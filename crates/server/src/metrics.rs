//! Per-endpoint serving metrics: request counts, error counts, latency
//! min/mean/max plus a fixed-bucket histogram, and bytes written — all
//! lock-free atomics so workers never contend, snapshotted by the
//! `stats` endpoint, rendered as Prometheus text by the `metrics`
//! endpoint, and logged on shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ctxform_obs::metrics::{Histogram, PromText, LATENCY_BUCKETS_S};

use crate::json::Json;

/// The fixed endpoint list (wire `op` names plus a bucket for requests
/// that never parsed far enough to have one).
pub const ENDPOINTS: [&str; 18] = [
    "load_source",
    "load_facts",
    "update",
    "analyze",
    "points_to",
    "points_to_batch",
    "query",
    "query_batch",
    "may_alias",
    "call_edges",
    "reachable",
    "stats",
    "metrics",
    "profile",
    "trace",
    "sleep",
    "shutdown",
    "invalid",
];

struct EndpointStats {
    count: AtomicU64,
    errors: AtomicU64,
    total_ns: AtomicU64,
    /// `u64::MAX` means "no sample yet". Zero is a valid minimum (a
    /// sub-nanosecond request really does round to 0), so it cannot double
    /// as the unset sentinel.
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    bytes_out: AtomicU64,
    latency: Histogram,
}

impl Default for EndpointStats {
    fn default() -> Self {
        EndpointStats {
            count: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latency: Histogram::new(&LATENCY_BUCKETS_S),
        }
    }
}

/// The metrics registry.
pub struct Metrics {
    endpoints: [EndpointStats; ENDPOINTS.len()],
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            endpoints: Default::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    /// Records one served request. Unknown endpoint names fall into the
    /// `invalid` bucket.
    pub fn record(&self, endpoint: &str, latency: Duration, bytes_out: usize, is_error: bool) {
        let idx = ENDPOINTS
            .iter()
            .position(|&e| e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        let stats = &self.endpoints[idx];
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        stats.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        stats.total_ns.fetch_add(ns, Ordering::Relaxed);
        // min starts at u64::MAX ("no sample"), so a single fetch_min is
        // correct even for genuine zero-duration samples.
        stats.min_ns.fetch_min(ns, Ordering::Relaxed);
        stats.max_ns.fetch_max(ns, Ordering::Relaxed);
        stats
            .bytes_out
            .fetch_add(bytes_out as u64, Ordering::Relaxed);
        stats.latency.observe_duration(latency);
    }

    /// Total requests served across endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Milliseconds since the registry was created.
    pub fn uptime_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1000.0
    }

    /// A JSON object mapping each used endpoint to its counters.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::new();
        for (name, stats) in ENDPOINTS.iter().zip(&self.endpoints) {
            let count = stats.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let total_ns = stats.total_ns.load(Ordering::Relaxed);
            let to_ms = |ns: u64| ns as f64 / 1e6;
            // A racing reader can observe the count before the first
            // fetch_min lands; the sentinel then means "no sample yet".
            let min_ns = stats.min_ns.load(Ordering::Relaxed);
            let min_json = if min_ns == u64::MAX {
                Json::str("no data")
            } else {
                Json::ms(to_ms(min_ns))
            };
            pairs.push((
                (*name).to_owned(),
                Json::obj([
                    ("count", Json::uint(count)),
                    ("errors", Json::uint(stats.errors.load(Ordering::Relaxed))),
                    ("min_ms", min_json),
                    ("mean_ms", Json::ms(to_ms(total_ns / count.max(1)))),
                    (
                        "max_ms",
                        Json::ms(to_ms(stats.max_ns.load(Ordering::Relaxed))),
                    ),
                    (
                        "bytes_out",
                        Json::uint(stats.bytes_out.load(Ordering::Relaxed)),
                    ),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// Appends this registry's per-endpoint series to a Prometheus
    /// exposition: request/error/byte counters and the latency
    /// histogram plus min/max gauges, labelled by endpoint. Endpoints
    /// that never served a request are omitted (their series would be
    /// all-zero noise).
    pub fn render_prometheus(&self, text: &mut PromText) {
        let used: Vec<(&str, &EndpointStats)> = ENDPOINTS
            .iter()
            .zip(&self.endpoints)
            .filter(|(_, s)| s.count.load(Ordering::Relaxed) > 0)
            .map(|(name, s)| (*name, s))
            .collect();
        text.header(
            "ctxform_uptime_seconds",
            "gauge",
            "Seconds since the metrics registry was created.",
        );
        text.sample("ctxform_uptime_seconds", &[], self.uptime_ms() / 1000.0);
        if used.is_empty() {
            return;
        }
        text.header(
            "ctxform_requests_total",
            "counter",
            "Requests served, by endpoint.",
        );
        for (name, s) in &used {
            text.sample(
                "ctxform_requests_total",
                &[("endpoint", name)],
                s.count.load(Ordering::Relaxed) as f64,
            );
        }
        text.header(
            "ctxform_request_errors_total",
            "counter",
            "Requests answered with ok=false, by endpoint.",
        );
        for (name, s) in &used {
            text.sample(
                "ctxform_request_errors_total",
                &[("endpoint", name)],
                s.errors.load(Ordering::Relaxed) as f64,
            );
        }
        text.header(
            "ctxform_response_bytes_total",
            "counter",
            "Reply bytes written, by endpoint.",
        );
        for (name, s) in &used {
            text.sample(
                "ctxform_response_bytes_total",
                &[("endpoint", name)],
                s.bytes_out.load(Ordering::Relaxed) as f64,
            );
        }
        text.header(
            "ctxform_request_duration_seconds",
            "histogram",
            "Request latency, by endpoint.",
        );
        for (name, s) in &used {
            text.histogram(
                "ctxform_request_duration_seconds",
                &[("endpoint", name)],
                &s.latency,
            );
        }
        text.header(
            "ctxform_request_duration_min_seconds",
            "gauge",
            "Fastest request observed, by endpoint.",
        );
        for (name, s) in &used {
            let min_ns = s.min_ns.load(Ordering::Relaxed);
            if min_ns != u64::MAX {
                text.sample(
                    "ctxform_request_duration_min_seconds",
                    &[("endpoint", name)],
                    min_ns as f64 / 1e9,
                );
            }
        }
        text.header(
            "ctxform_request_duration_max_seconds",
            "gauge",
            "Slowest request observed, by endpoint.",
        );
        for (name, s) in &used {
            text.sample(
                "ctxform_request_duration_max_seconds",
                &[("endpoint", name)],
                s.max_ns.load(Ordering::Relaxed) as f64 / 1e9,
            );
        }
    }

    /// A human-readable multi-line report (logged on shutdown).
    pub fn report(&self) -> String {
        let mut out = format!(
            "served {} requests in {:.1}ms\n",
            self.total_requests(),
            self.uptime_ms()
        );
        for (name, stats) in ENDPOINTS.iter().zip(&self.endpoints) {
            let count = stats.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {name:<12} {count:>8} reqs  {:>6} errors  mean {:.3}ms  max {:.3}ms  {} bytes\n",
                stats.errors.load(Ordering::Relaxed),
                stats.total_ns.load(Ordering::Relaxed) as f64 / 1e6 / count as f64,
                stats.max_ns.load(Ordering::Relaxed) as f64 / 1e6,
                stats.bytes_out.load(Ordering::Relaxed),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let m = Metrics::default();
        m.record("points_to", Duration::from_millis(2), 100, false);
        m.record("points_to", Duration::from_millis(4), 50, true);
        m.record("nonsense", Duration::from_millis(1), 10, true);
        assert_eq!(m.total_requests(), 3);
        let json = m.to_json();
        let pt = json.get("points_to").unwrap();
        assert_eq!(pt.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(pt.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(pt.get("bytes_out").unwrap().as_u64(), Some(150));
        let min = pt.get("min_ms").unwrap().as_f64().unwrap();
        let max = pt.get("max_ms").unwrap().as_f64().unwrap();
        assert!((1.9..=3.0).contains(&min), "min {min}");
        assert!(max >= 3.9, "max {max}");
        assert!(json.get("invalid").is_some());
        assert!(json.get("analyze").is_none(), "unused endpoints omitted");
        assert!(m.report().contains("points_to"));
    }

    #[test]
    fn prometheus_rendering_covers_used_endpoints() {
        let m = Metrics::default();
        m.record("points_to", Duration::from_millis(2), 100, false);
        m.record("points_to", Duration::from_millis(4), 50, true);
        let mut text = PromText::new();
        m.render_prometheus(&mut text);
        let out = text.finish();
        assert!(out.contains("# TYPE ctxform_requests_total counter"));
        assert!(out.contains("ctxform_requests_total{endpoint=\"points_to\"} 2"));
        assert!(out.contains("ctxform_request_errors_total{endpoint=\"points_to\"} 1"));
        assert!(out.contains("ctxform_response_bytes_total{endpoint=\"points_to\"} 150"));
        assert!(out.contains("# TYPE ctxform_request_duration_seconds histogram"));
        assert!(out.contains(
            "ctxform_request_duration_seconds_bucket{endpoint=\"points_to\",le=\"+Inf\"} 2"
        ));
        assert!(out.contains("ctxform_request_duration_seconds_count{endpoint=\"points_to\"} 2"));
        assert!(
            !out.contains("endpoint=\"analyze\""),
            "unused endpoints omitted"
        );
    }

    #[test]
    fn zero_duration_sample_is_a_real_minimum() {
        let m = Metrics::default();
        m.record("stats", Duration::ZERO, 1, false);
        m.record("stats", Duration::from_millis(10), 1, false);
        let json = m.to_json();
        let ep = json.get("stats").unwrap();
        let min = ep.get("min_ms").unwrap().as_f64().unwrap();
        let max = ep.get("max_ms").unwrap().as_f64().unwrap();
        assert_eq!(min, 0.0, "a zero-duration sample must register as min=0");
        assert!(max >= 9.9, "max {max}");
    }

    #[test]
    fn single_zero_duration_sample_is_not_no_data() {
        let m = Metrics::default();
        m.record("sleep", Duration::ZERO, 0, false);
        let json = m.to_json();
        let ep = json.get("sleep").unwrap();
        assert_eq!(
            ep.get("min_ms").unwrap().as_f64(),
            Some(0.0),
            "the u64::MAX sentinel must not swallow a genuine zero sample"
        );
    }
}
