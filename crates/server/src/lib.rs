//! `ctxform-server` — a concurrent points-to query service with cached
//! analysis databases.
//!
//! Every other entry point in this workspace is batch and one-shot: each
//! caller pays a full solve even to answer a single points-to question.
//! This crate makes the analysis resident. A long-running daemon
//! ([`server::start`]) compiles MiniJava or parses fact files into program
//! databases keyed by content digest, solves them on demand under any
//! [`ctxform::AnalysisConfig`], and caches the solved
//! [`ctxform::AnalysisResult`]s behind `Arc` in a byte-budgeted LRU
//! ([`db::DbManager`]) — the serving-side analogue of value-context reuse:
//! answer repeated queries from previously computed results instead of
//! recomputing them. Cold context-insensitive queries can bypass the
//! exhaustive solver entirely through the demand-driven magic-sets path
//! (`"demand": true` on `points_to`).
//!
//! The wire protocol ([`protocol`]) is newline-delimited JSON over TCP —
//! one request object per line, one reply object per line — implemented
//! with the in-tree reader/writer of [`json`] (the build environment is
//! offline; no serde). The serving core ([`server`], [`shard`]) is
//! shard-per-core: program digests are consistent-hashed across N
//! independent shards, each owning its own caches, bounded job queue, and
//! worker pool, with optional replication of hot digests to a second
//! shard. Clients may pipeline many requests per connection (replies
//! carry a verifiable `seq`) and batch thousands of points-to queries
//! into one `points_to_batch` round-trip. Overload is rejected explicitly
//! with an `overloaded` reply per shard rather than absorbed into
//! unbounded growth, oversized request lines get a typed `too_large`
//! error without unbounded buffering, every request carries a deadline,
//! and shutdown drains in-flight requests. [`metrics`] exposes
//! per-endpoint request counts, latency min/mean/max, bytes served, and
//! cache hit rates via the `stats` endpoint, plus per-shard
//! `ctxform_shard_*` Prometheus series via `metrics`.
//!
//! Two binaries ship with the crate: `ctxform-serve` (the daemon) and
//! `ctxform-client` (one-shot queries plus a `loadgen` mode writing a
//! `BENCH_<n>.json`-style serving-performance artifact).
//!
//! ```
//! use ctxform_server::{client::Client, json::Json, server};
//!
//! let handle = server::start(server::ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let digest = client.load_source(ctxform_minijava::corpus::BOX)?;
//! let reply = client.request(&Json::obj([
//!     ("op", Json::str("points_to")),
//!     ("program", Json::str(digest)),
//!     ("abstraction", Json::str("tstring")),
//!     ("sensitivity", Json::str("2-object+H")),
//!     ("method", Json::str("Main.main")),
//!     ("var", Json::str("r1")),
//! ]))?;
//! assert_eq!(reply.get("heaps").unwrap().as_arr().unwrap().len(), 1);
//! handle.shutdown();
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod db;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod tail;

pub use client::{loadgen, Client, ClientError, LoadGenConfig, LoadReport, TraceSampleStats};
pub use db::DbManager;
pub use json::Json;
pub use profile::ProfileStore;
pub use protocol::{ErrorCode, ProtoError, Request};
pub use server::{start, ServerConfig, ServerHandle};
pub use shard::{Router, Shard, ShardSnapshot};
pub use tail::{Exemplar, ExemplarStore, FlightRecorder, EXEMPLARS_PER_ENDPOINT};
