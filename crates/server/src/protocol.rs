//! The wire protocol: newline-delimited JSON requests and replies.
//!
//! Every request is one JSON object on one line with an `"op"` field; every
//! reply is one JSON object on one line with `"ok": true` plus the answer
//! fields, or `"ok": false` plus a machine-readable `"error"` code and a
//! human-readable `"message"`. An optional `"id"` request field is echoed
//! verbatim in the reply, and the server stamps every reply with a
//! per-connection `"seq"` (1-based request index), so clients may write
//! many request lines before reading replies — pipelining — and verify
//! that reply order matches request order. `points_to_batch` answers many
//! variable queries against one cached database in a single framed
//! round-trip ([`MAX_BATCH_VARS`] bound).
//!
//! Analysis-bearing requests name a program by the 16-hex-digit digest
//! returned from `load_source`/`load_facts`, and a configuration by
//! `"abstraction"` (`"insensitive"` default, `"cstring"`, `"tstring"`),
//! `"sensitivity"` (a label like `"2-object+H"`, required for the
//! context-sensitive abstractions) and an optional `"subsumption"` flag.

use std::fmt;

use ctxform::{AbstractionKind, AnalysisConfig};

use crate::json::{hex16, Json};

/// Machine-readable error codes of `"ok": false` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line is not valid JSON or not a valid request shape.
    BadRequest,
    /// MiniJava source failed to compile.
    CompileError,
    /// A fact file failed to parse or validate.
    FactError,
    /// No loaded program has the given digest.
    UnknownProgram,
    /// No method with the given name.
    UnknownMethod,
    /// No variable with the given name in the given method.
    UnknownVar,
    /// Request processing exceeded the per-request deadline.
    DeadlineExceeded,
    /// The routed shard's queue (or the connection limit) was full;
    /// retry later.
    Overloaded,
    /// The request line exceeded the per-line byte bound.
    TooLarge,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::CompileError => "compile_error",
            ErrorCode::FactError => "fact_error",
            ErrorCode::UnknownProgram => "unknown_program",
            ErrorCode::UnknownMethod => "unknown_method",
            ErrorCode::UnknownVar => "unknown_var",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed protocol error (code + message), convertible into a reply line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// The human-readable explanation.
    pub message: String,
}

impl ProtoError {
    /// Creates an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Upper bound on `points_to_batch` fan-in: generous enough for "thousands
/// of variable queries in one round-trip" while keeping one request line
/// from monopolizing a shard worker indefinitely.
pub const MAX_BATCH_VARS: usize = 65_536;

/// A `(method name, variable name)` pair addressing one program variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarRef {
    /// Qualified method name, e.g. `"Main.main"`.
    pub method: String,
    /// Variable name within the method, e.g. `"r1"`.
    pub var: String,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile MiniJava source into a cached program database.
    LoadSource {
        /// The MiniJava source text.
        source: String,
    },
    /// Parse a `ctxform_ir::text` fact file into a cached program database.
    LoadFacts {
        /// The fact-file text.
        facts: String,
    },
    /// Bring a cached analysis database up to date with an edited program.
    ///
    /// Names the *base* program by digest and carries the edited program
    /// in full (as MiniJava source or a fact file). When the server holds
    /// a solved database for `(base, config)` and the edit is purely
    /// additive, the solve resumes incrementally from the saved state;
    /// otherwise it falls back to a from-scratch solve. Either way the
    /// edited program is loaded and its solution cached under its own
    /// digest.
    Update {
        /// Base program digest from a previous load.
        base: u64,
        /// Edited MiniJava source (exactly one of `source`/`facts`).
        source: Option<String>,
        /// Edited fact-file text (exactly one of `source`/`facts`).
        facts: Option<String>,
        /// The analysis configuration.
        config: AnalysisConfig,
    },
    /// Solve (or fetch the cached solution of) a program under a config.
    Analyze {
        /// Program digest from `load_source`/`load_facts`.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
    },
    /// The points-to set of one variable.
    PointsTo {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// The queried variable.
        var: VarRef,
        /// Answer via the demand-driven magic-sets engine instead of the
        /// exhaustive (cached) solver; context-insensitive only.
        demand: bool,
    },
    /// The points-to sets of many variables against one cached database,
    /// answered in a single framed round-trip (amortizes framing for
    /// clients asking thousands of `points_to` questions).
    PointsToBatch {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// The queried variables, answered positionally.
        vars: Vec<VarRef>,
    },
    /// Demand-driven points-to query: answered from the cached solved
    /// database when one is resident, otherwise via the demand engine
    /// (magic-sets slice + gated context-sensitive solve) *without*
    /// triggering a full exhaustive solve.
    Query {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// The queried variable.
        var: VarRef,
    },
    /// Demand-driven points-to queries for many variables in one framed
    /// round-trip; one shared demand slice answers the whole batch
    /// ([`MAX_BATCH_VARS`] bound).
    QueryBatch {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// The queried variables, answered positionally.
        vars: Vec<VarRef>,
    },
    /// Whether two variables may alias.
    MayAlias {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// First variable.
        a: VarRef,
        /// Second variable.
        b: VarRef,
    },
    /// The resolved call graph (invocation site → target method).
    CallEdges {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// Restrict to one invocation site by name.
        inv: Option<String>,
    },
    /// The reachable methods, or a membership test for one method.
    Reachable {
        /// Program digest.
        program: u64,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// Test just this method.
        method: Option<String>,
    },
    /// Server statistics.
    Stats,
    /// Prometheus text exposition of server + solver metrics.
    Metrics,
    /// Aggregated solver profile: per-rule wall-time histograms, phase
    /// timings, byte accounting, and a folded-stack (flamegraph-ready)
    /// rendering of where solve time went.
    Profile,
    /// The collected trace spans/events (requires tracing enabled on
    /// the server; see `--trace` on `ctxform-serve`).
    Trace {
        /// Return only the newest `limit` records.
        limit: Option<usize>,
        /// Also return the slowest-request exemplars per endpoint, each
        /// with its reconstructed span subtree.
        exemplars: bool,
    },
    /// Hold a shard worker for `ms` milliseconds (testing aid: exercises
    /// per-shard backpressure and per-request deadlines deterministically).
    Sleep {
        /// How long to hold the worker.
        ms: u64,
        /// Pin the sleep to one shard by index (round-robin when absent),
        /// so tests can fill a specific shard's queue.
        shard: Option<usize>,
    },
    /// Begin graceful shutdown: drain in-flight requests, then exit.
    Shutdown,
}

impl Request {
    /// The endpoint label used by metrics and the `stats` reply.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::LoadSource { .. } => "load_source",
            Request::LoadFacts { .. } => "load_facts",
            Request::Update { .. } => "update",
            Request::Analyze { .. } => "analyze",
            Request::PointsTo { .. } => "points_to",
            Request::PointsToBatch { .. } => "points_to_batch",
            Request::Query { .. } => "query",
            Request::QueryBatch { .. } => "query_batch",
            Request::MayAlias { .. } => "may_alias",
            Request::CallEdges { .. } => "call_edges",
            Request::Reachable { .. } => "reachable",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Profile => "profile",
            Request::Trace { .. } => "trace",
            Request::Sleep { .. } => "sleep",
            Request::Shutdown => "shutdown",
        }
    }
}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError::new(ErrorCode::BadRequest, message)
}

fn req_str(obj: &Json, key: &str) -> Result<String, ProtoError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| bad(format!("missing string field `{key}`")))
}

fn opt_str(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn req_program(obj: &Json) -> Result<u64, ProtoError> {
    let digest = req_str(obj, "program")?;
    u64::from_str_radix(&digest, 16)
        .map_err(|_| bad(format!("`program` is not a hex digest: `{digest}`")))
}

fn req_var(obj: &Json, method_key: &str, var_key: &str) -> Result<VarRef, ProtoError> {
    Ok(VarRef {
        method: req_str(obj, method_key)?,
        var: req_str(obj, var_key)?,
    })
}

/// Reads a non-empty, [`MAX_BATCH_VARS`]-bounded `vars` array of
/// `{method, var}` objects (the batch-op fan-in shape).
fn req_var_array(obj: &Json, op: &str) -> Result<Vec<VarRef>, ProtoError> {
    let items = obj
        .get("vars")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(format!("`{op}` needs a `vars` array")))?;
    if items.is_empty() {
        return Err(bad("`vars` must not be empty"));
    }
    if items.len() > MAX_BATCH_VARS {
        return Err(bad(format!(
            "`vars` has {} entries; the per-request limit is {MAX_BATCH_VARS}",
            items.len()
        )));
    }
    let mut vars = Vec::with_capacity(items.len());
    for item in items {
        vars.push(req_var(item, "method", "var")?);
    }
    Ok(vars)
}

/// Reads the analysis configuration fields of a request.
fn req_config(obj: &Json) -> Result<AnalysisConfig, ProtoError> {
    let abstraction = opt_str(obj, "abstraction").unwrap_or_else(|| "insensitive".into());
    let sensitivity = match opt_str(obj, "sensitivity") {
        Some(label) => Some(
            label
                .parse()
                .map_err(|e| bad(format!("bad `sensitivity`: {e}")))?,
        ),
        None => None,
    };
    let mut config = match abstraction.as_str() {
        "insensitive" | "ci" => AnalysisConfig::insensitive(),
        "cstring" | "context-strings" => AnalysisConfig::context_strings(
            sensitivity.ok_or_else(|| bad("`cstring` requires a `sensitivity`"))?,
        ),
        "tstring" | "transformer-strings" => AnalysisConfig::transformer_strings(
            sensitivity.ok_or_else(|| bad("`tstring` requires a `sensitivity`"))?,
        ),
        other => return Err(bad(format!("unknown abstraction `{other}`"))),
    };
    if let Some(flag) = obj.get("subsumption").and_then(Json::as_bool) {
        if flag {
            config = config.with_subsumption();
        }
    }
    // Solver thread count (0 = auto). Deliberately excluded from
    // `config_tag`: the parallel engine is bit-identical to the serial
    // one, so every thread count shares a cache entry.
    if let Some(threads) = obj.get("threads").and_then(Json::as_u64) {
        config = config.with_threads(threads as usize);
    }
    // Solve engine selection. Also excluded from `config_tag`: the
    // bottom-up SCC summary engine is bit-identical to the round-based
    // one (that parity is the fuzzed acceptance oracle), so both modes
    // share a cache entry.
    if let Some(mode) = opt_str(obj, "solve_mode") {
        config = match mode.as_str() {
            "rounds" => config.with_solve_mode(ctxform::SolveMode::Rounds),
            "summary-scc" | "scc" => config.with_summary_scc(),
            other => return Err(bad(format!("unknown solve_mode `{other}`"))),
        };
    }
    Ok(config)
}

/// Request envelope fields that ride alongside the operation: the
/// client-chosen `id` (echoed verbatim) and the optional `trace` id
/// (echoed verbatim and attached to the server's request span and
/// slow-query log, so one query can be followed across client logs,
/// server logs, and trace dumps).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestMeta {
    /// The `"id"` field, any JSON value.
    pub id: Option<Json>,
    /// The `"trace"` field (client-supplied trace id).
    pub trace: Option<String>,
    /// Server-assigned per-connection request sequence number, echoed as
    /// `"seq"` in every reply so pipelining clients can verify that reply
    /// order matches request order. `None` for replies built outside a
    /// connection (accept-time rejections, unit tests).
    pub seq: Option<u64>,
}

impl RequestMeta {
    /// Builds an `"ok": true` reply echoing this envelope.
    pub fn ok_reply(&self, mut fields: Vec<(&'static str, Json)>) -> String {
        if let Some(seq) = self.seq {
            fields.push(("seq", Json::uint(seq)));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace", Json::str(trace)));
        }
        ok_reply(self.id.as_ref(), fields)
    }

    /// Builds an `"ok": false` reply echoing this envelope.
    pub fn err_reply(&self, error: &ProtoError) -> String {
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(6);
        if let Some(id) = &self.id {
            pairs.push(("id".into(), id.clone()));
        }
        pairs.push(("ok".into(), Json::Bool(false)));
        pairs.push(("error".into(), Json::str(error.code.as_str())));
        pairs.push(("message".into(), Json::str(&*error.message)));
        if let Some(seq) = self.seq {
            pairs.push(("seq".into(), Json::uint(seq)));
        }
        if let Some(trace) = &self.trace {
            pairs.push(("trace".into(), Json::str(trace)));
        }
        let mut line = Json::Obj(pairs).to_line();
        line.push('\n');
        line
    }
}

/// Best-effort envelope extraction for request lines that failed to
/// parse into a typed request: a well-formed JSON object with a bad or
/// missing `op` still gets its `id` and `trace` echoed in the error
/// reply. Lines that are not JSON objects yield an empty envelope.
pub fn salvage_meta(line: &str) -> RequestMeta {
    match Json::parse(line) {
        Ok(obj @ Json::Obj(_)) => RequestMeta {
            id: obj.get("id").cloned(),
            trace: opt_str(&obj, "trace"),
            seq: None,
        },
        _ => RequestMeta::default(),
    }
}

/// Parses one request line into its envelope ([`RequestMeta`]) and the
/// typed request.
///
/// # Errors
///
/// Returns a [`ProtoError`] with [`ErrorCode::BadRequest`] for malformed
/// JSON, a missing/unknown `op`, or missing/ill-typed fields.
pub fn parse_request(line: &str) -> Result<(RequestMeta, Request), ProtoError> {
    let obj = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    if !matches!(obj, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    let meta = RequestMeta {
        id: obj.get("id").cloned(),
        trace: opt_str(&obj, "trace"),
        seq: None,
    };
    let op = req_str(&obj, "op")?;
    let request = match op.as_str() {
        "load_source" => Request::LoadSource {
            source: req_str(&obj, "source")?,
        },
        "load_facts" => Request::LoadFacts {
            facts: req_str(&obj, "facts")?,
        },
        "update" => {
            let source = opt_str(&obj, "source");
            let facts = opt_str(&obj, "facts");
            if source.is_some() == facts.is_some() {
                return Err(bad("`update` needs exactly one of `source`/`facts`"));
            }
            let base = req_str(&obj, "base")?;
            let base = u64::from_str_radix(&base, 16)
                .map_err(|_| bad(format!("`base` is not a hex digest: `{base}`")))?;
            Request::Update {
                base,
                source,
                facts,
                config: req_config(&obj)?,
            }
        }
        "analyze" => Request::Analyze {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
        },
        "points_to" => Request::PointsTo {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            var: req_var(&obj, "method", "var")?,
            demand: obj.get("demand").and_then(Json::as_bool).unwrap_or(false),
        },
        "points_to_batch" => Request::PointsToBatch {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            vars: req_var_array(&obj, "points_to_batch")?,
        },
        "query" => Request::Query {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            var: req_var(&obj, "method", "var")?,
        },
        "query_batch" => Request::QueryBatch {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            vars: req_var_array(&obj, "query_batch")?,
        },
        "may_alias" => Request::MayAlias {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            a: req_var(&obj, "method_a", "var_a")?,
            b: req_var(&obj, "method_b", "var_b")?,
        },
        "call_edges" => Request::CallEdges {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            inv: opt_str(&obj, "inv"),
        },
        "reachable" => Request::Reachable {
            program: req_program(&obj)?,
            config: req_config(&obj)?,
            method: opt_str(&obj, "method"),
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "profile" => Request::Profile,
        "trace" => Request::Trace {
            limit: obj.get("limit").and_then(Json::as_u64).map(|n| n as usize),
            exemplars: obj
                .get("exemplars")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        },
        "sleep" => Request::Sleep {
            ms: obj
                .get("ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("`sleep` needs an integer `ms`"))?,
            shard: obj.get("shard").and_then(Json::as_u64).map(|n| n as usize),
        },
        "shutdown" => Request::Shutdown,
        other => return Err(bad(format!("unknown op `{other}`"))),
    };
    Ok((meta, request))
}

/// Builds an `"ok": true` reply line (with trailing newline).
pub fn ok_reply(id: Option<&Json>, fields: Vec<(&'static str, Json)>) -> String {
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
    if let Some(id) = id {
        pairs.push(("id".into(), id.clone()));
    }
    pairs.push(("ok".into(), Json::Bool(true)));
    for (k, v) in fields {
        pairs.push((k.into(), v));
    }
    let mut line = Json::Obj(pairs).to_line();
    line.push('\n');
    line
}

/// Builds an `"ok": false` reply line (with trailing newline).
pub fn err_reply(id: Option<&Json>, error: &ProtoError) -> String {
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(4);
    if let Some(id) = id {
        pairs.push(("id".into(), id.clone()));
    }
    pairs.push(("ok".into(), Json::Bool(false)));
    pairs.push(("error".into(), Json::str(error.code.as_str())));
    pairs.push(("message".into(), Json::str(&*error.message)));
    let mut line = Json::Obj(pairs).to_line();
    line.push('\n');
    line
}

/// Canonical cache tag of a configuration — the database key component
/// alongside the program digest. Distinct configurations that cannot give
/// different answers (e.g. recorded facts) still get distinct tags only
/// when the flag changes results, so the tag is built from the
/// answer-relevant fields alone.
pub fn config_tag(config: &AnalysisConfig) -> String {
    let sens = config
        .sensitivity
        .map(|s| s.to_string())
        .unwrap_or_else(|| "-".into());
    let kind = match config.abstraction {
        AbstractionKind::Insensitive => "ci",
        AbstractionKind::ContextStrings => "cstring",
        AbstractionKind::TransformerStrings => "tstring",
    };
    format!(
        "{kind}/{sens}{}",
        if config.subsumption { "+subs" } else { "" }
    )
}

/// Renders a program digest for the wire.
pub fn digest_str(digest: u64) -> String {
    hex16(digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let lines = [
            (
                r#"{"op": "load_source", "source": "class Main {}"}"#,
                "load_source",
            ),
            (r##"{"op": "load_facts", "facts": "# f"}"##, "load_facts"),
            (
                r#"{"op": "analyze", "program": "00000000000000ff", "abstraction": "tstring", "sensitivity": "2-object+H"}"#,
                "analyze",
            ),
            (
                r#"{"op": "update", "base": "ff", "source": "class Main {}"}"#,
                "update",
            ),
            (
                r#"{"op": "points_to", "program": "ff", "method": "Main.main", "var": "x"}"#,
                "points_to",
            ),
            (
                r#"{"op": "points_to_batch", "program": "ff", "vars": [{"method": "Main.main", "var": "x"}, {"method": "Main.main", "var": "y"}]}"#,
                "points_to_batch",
            ),
            (
                r#"{"op": "query", "program": "ff", "abstraction": "tstring", "sensitivity": "2-object+H", "method": "Main.main", "var": "x"}"#,
                "query",
            ),
            (
                r#"{"op": "query_batch", "program": "ff", "vars": [{"method": "Main.main", "var": "x"}]}"#,
                "query_batch",
            ),
            (
                r#"{"op": "may_alias", "program": "ff", "method_a": "M.m", "var_a": "x", "method_b": "M.m", "var_b": "y"}"#,
                "may_alias",
            ),
            (r#"{"op": "call_edges", "program": "ff"}"#, "call_edges"),
            (r#"{"op": "reachable", "program": "ff"}"#, "reachable"),
            (r#"{"op": "stats"}"#, "stats"),
            (r#"{"op": "metrics"}"#, "metrics"),
            (r#"{"op": "profile"}"#, "profile"),
            (r#"{"op": "trace", "limit": 100}"#, "trace"),
            (r#"{"op": "trace", "exemplars": true}"#, "trace"),
            (r#"{"op": "sleep", "ms": 5}"#, "sleep"),
            (r#"{"op": "shutdown"}"#, "shutdown"),
        ];
        for (line, endpoint) in lines {
            let (_, req) = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(req.endpoint(), endpoint);
        }
    }

    #[test]
    fn id_is_parsed_and_echoed() {
        let (meta, _) = parse_request(r#"{"id": 7, "op": "stats"}"#).unwrap();
        assert_eq!(meta.id, Some(Json::Num(7.0)));
        assert_eq!(meta.trace, None);
        let reply = ok_reply(meta.id.as_ref(), vec![("x", Json::int(1))]);
        assert_eq!(reply, "{\"id\": 7, \"ok\": true, \"x\": 1}\n");
        // Without a trace id the envelope reply is byte-identical to the
        // plain one — the field is strictly additive.
        assert_eq!(meta.ok_reply(vec![("x", Json::int(1))]), reply);
        let err = err_reply(
            meta.id.as_ref(),
            &ProtoError::new(ErrorCode::Internal, "boom"),
        );
        let parsed = Json::parse(err.trim()).unwrap();
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("internal"));
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn seq_is_stamped_on_ok_and_error_replies() {
        let (mut meta, _) = parse_request(r#"{"id": 9, "trace": "t-1", "op": "stats"}"#).unwrap();
        assert_eq!(meta.seq, None, "the parser never invents a seq");
        meta.seq = Some(3);
        let ok = meta.ok_reply(vec![("x", Json::int(1))]);
        assert_eq!(
            ok,
            "{\"id\": 9, \"ok\": true, \"x\": 1, \"seq\": 3, \"trace\": \"t-1\"}\n"
        );
        let err = meta.err_reply(&ProtoError::new(ErrorCode::TooLarge, "big"));
        let parsed = Json::parse(err.trim()).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("error").unwrap().as_str(), Some("too_large"));
    }

    #[test]
    fn batch_vars_parse_positionally() {
        let (_, req) = parse_request(
            r#"{"op": "points_to_batch", "program": "ff", "vars": [{"method": "A.m", "var": "x"}, {"method": "B.n", "var": "y"}]}"#,
        )
        .unwrap();
        let Request::PointsToBatch { vars, .. } = req else {
            panic!("wrong variant");
        };
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].method, "A.m");
        assert_eq!(vars[1].var, "y");
    }

    #[test]
    fn trace_exemplars_flag_parses() {
        let (_, req) = parse_request(r#"{"op": "trace", "limit": 8}"#).unwrap();
        assert_eq!(
            req,
            Request::Trace {
                limit: Some(8),
                exemplars: false
            }
        );
        let (_, req) = parse_request(r#"{"op": "trace", "exemplars": true}"#).unwrap();
        assert_eq!(
            req,
            Request::Trace {
                limit: None,
                exemplars: true
            }
        );
    }

    #[test]
    fn trace_id_is_parsed_and_echoed() {
        let (meta, _) = parse_request(r#"{"id": 1, "trace": "req-42", "op": "stats"}"#).unwrap();
        assert_eq!(meta.trace.as_deref(), Some("req-42"));
        let ok = meta.ok_reply(vec![("x", Json::int(1))]);
        assert_eq!(
            ok,
            "{\"id\": 1, \"ok\": true, \"x\": 1, \"trace\": \"req-42\"}\n"
        );
        let err = meta.err_reply(&ProtoError::new(ErrorCode::Internal, "boom"));
        let parsed = Json::parse(err.trim()).unwrap();
        assert_eq!(parsed.get("trace").unwrap().as_str(), Some("req-42"));
    }

    #[test]
    fn malformed_requests_are_bad_request() {
        for line in [
            "not json",
            "[1, 2]",
            r#"{"op": "warp"}"#,
            r#"{"source": "class Main {}"}"#,
            r#"{"op": "points_to", "program": "zz", "method": "M.m", "var": "x"}"#,
            r#"{"op": "analyze", "program": "ff", "abstraction": "tstring"}"#,
            r#"{"op": "analyze", "program": "ff", "abstraction": "tstring", "sensitivity": "9-warp"}"#,
            r#"{"op": "sleep"}"#,
            r#"{"op": "points_to_batch", "program": "ff"}"#,
            r#"{"op": "points_to_batch", "program": "ff", "vars": []}"#,
            r#"{"op": "points_to_batch", "program": "ff", "vars": [{"method": "M.m"}]}"#,
            r#"{"op": "query", "program": "ff", "method": "M.m"}"#,
            r#"{"op": "query", "program": "zz", "method": "M.m", "var": "x"}"#,
            r#"{"op": "query_batch", "program": "ff"}"#,
            r#"{"op": "query_batch", "program": "ff", "vars": []}"#,
            r#"{"op": "query_batch", "program": "ff", "vars": [{"var": "x"}]}"#,
            r#"{"op": "update", "base": "ff"}"#,
            r##"{"op": "update", "base": "ff", "source": "class Main {}", "facts": "# f"}"##,
            r#"{"op": "update", "base": "zz", "source": "class Main {}"}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn config_fields_resolve() {
        let (_, req) = parse_request(
            r#"{"op": "analyze", "program": "1", "abstraction": "cstring", "sensitivity": "1-call", "subsumption": true}"#,
        )
        .unwrap();
        let Request::Analyze { program, config } = req else {
            panic!("wrong variant");
        };
        assert_eq!(program, 1);
        assert_eq!(config.abstraction, AbstractionKind::ContextStrings);
        assert!(config.subsumption);
        assert_eq!(config_tag(&config), "cstring/1-call+subs");
        let (_, req) = parse_request(r#"{"op": "analyze", "program": "1"}"#).unwrap();
        let Request::Analyze { config, .. } = req else {
            panic!("wrong variant");
        };
        assert_eq!(config, AnalysisConfig::insensitive());
        assert_eq!(config_tag(&config), "ci/-");
    }

    /// `threads` tunes the solve but can never fork the cache: the tag of
    /// a threaded request equals the tag of the untuned one.
    #[test]
    fn threads_parses_but_does_not_affect_the_cache_tag() {
        let (_, req) = parse_request(
            r#"{"op": "analyze", "program": "1", "abstraction": "tstring", "sensitivity": "2-object+H", "threads": 4}"#,
        )
        .unwrap();
        let Request::Analyze { config, .. } = req else {
            panic!("wrong variant");
        };
        assert_eq!(config.threads, 4);
        assert_eq!(
            config_tag(&config),
            config_tag(&AnalysisConfig::transformer_strings(
                "2-object+H".parse().unwrap()
            ))
        );
    }

    /// `solve_mode` selects the engine but can never fork the cache
    /// either: the SCC summary solver is bit-identical to the round
    /// engine, so both tags collapse to one entry. Unknown modes are a
    /// BadRequest, and the `scc` shorthand resolves to summary mode.
    #[test]
    fn solve_mode_parses_but_does_not_affect_the_cache_tag() {
        use ctxform::SolveMode;
        for spelling in ["summary-scc", "scc"] {
            let (_, req) = parse_request(&format!(
                r#"{{"op": "analyze", "program": "1", "abstraction": "tstring", "sensitivity": "2-object+H", "solve_mode": "{spelling}"}}"#,
            ))
            .unwrap();
            let Request::Analyze { config, .. } = req else {
                panic!("wrong variant");
            };
            assert_eq!(config.solve_mode, SolveMode::SummaryScc, "{spelling}");
            assert_eq!(
                config_tag(&config),
                config_tag(&AnalysisConfig::transformer_strings(
                    "2-object+H".parse().unwrap()
                ))
            );
        }
        let (_, req) =
            parse_request(r#"{"op": "analyze", "program": "1", "solve_mode": "rounds"}"#).unwrap();
        let Request::Analyze { config, .. } = req else {
            panic!("wrong variant");
        };
        assert_eq!(config.solve_mode, SolveMode::Rounds);
        let err = parse_request(r#"{"op": "analyze", "program": "1", "solve_mode": "topdown"}"#)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("solve_mode"));
    }
}
