//! End-to-end tests of the query service over real TCP connections on
//! ephemeral ports: answer parity with direct `analyze` calls (including
//! pipelined and batched requests), shard routing and replication, cache
//! behaviour, malformed-input / oversized-line / overload replies,
//! per-request deadlines, loadgen under concurrency, and graceful
//! shutdown.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::{compile, corpus};
use ctxform_server::client::{loadgen, Client, LoadGenConfig};
use ctxform_server::db::ci_digest;
use ctxform_server::json::Json;
use ctxform_server::protocol::digest_str;
use ctxform_server::server::{start, ServerConfig, ServerHandle};

/// The trace ring is process-global, so tests that flip tracing on and
/// off serialize through this gate rather than observing each other's
/// ring state mid-assertion.
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn trace_gate() -> std::sync::MutexGuard<'static, ()> {
    TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_server(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig {
        port: 0,
        shards: 2,
        threads: 2,
        queue_depth: 16,
        cache_bytes: 64 << 20,
        deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    configure(&mut config);
    start(config).expect("bind ephemeral port")
}

fn points_to_req(digest: &str, label: &str, method: &str, var: &str) -> Json {
    Json::obj([
        ("op", Json::str("points_to")),
        ("program", Json::str(digest)),
        ("abstraction", Json::str("tstring")),
        ("sensitivity", Json::str(label)),
        ("method", Json::str(method)),
        ("var", Json::str(var)),
    ])
}

fn str_arr(reply: &Json, key: &str) -> Vec<String> {
    reply
        .get(key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("missing `{key}` in {}", reply.to_line()))
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect()
}

/// Every query endpoint must answer exactly what a direct `analyze` call
/// answers, for every corpus program and every variable.
#[test]
fn server_answers_equal_direct_analyze() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let label = "2-object+H";
    let config = AnalysisConfig::transformer_strings(label.parse().unwrap());

    for (name, source) in corpus::all() {
        let module = compile(source).unwrap();
        let direct = analyze(&module.program, &config);
        let program = &module.program;
        let digest = client.load_source(source).unwrap();

        // points_to: every variable.
        for v in 0..program.var_count() {
            let var = ctxform_ir::Var::from_index(v);
            let method = &program.method_names[program.var_method[v].index()];
            let reply = client
                .request(&points_to_req(
                    &digest,
                    label,
                    method,
                    &program.var_names[v],
                ))
                .unwrap();
            let got = str_arr(&reply, "heaps");
            let want: Vec<String> = direct
                .ci
                .points_to(var)
                .iter()
                .map(|h| program.heap_names[h.index()].clone())
                .collect();
            assert_eq!(got, want, "{name}: points_to({})", program.var_names[v]);
        }

        // may_alias: spot-check the first few variable pairs.
        for a in 0..program.var_count().min(4) {
            for b in 0..program.var_count().min(4) {
                let (va, vb) = (
                    ctxform_ir::Var::from_index(a),
                    ctxform_ir::Var::from_index(b),
                );
                let reply = client
                    .request(&Json::obj([
                        ("op", Json::str("may_alias")),
                        ("program", Json::str(digest.clone())),
                        ("abstraction", Json::str("tstring")),
                        ("sensitivity", Json::str(label)),
                        (
                            "method_a",
                            Json::str(&*program.method_names[program.var_method[a].index()]),
                        ),
                        ("var_a", Json::str(&*program.var_names[a])),
                        (
                            "method_b",
                            Json::str(&*program.method_names[program.var_method[b].index()]),
                        ),
                        ("var_b", Json::str(&*program.var_names[b])),
                    ]))
                    .unwrap();
                assert_eq!(
                    reply.get("may_alias").unwrap().as_bool(),
                    Some(direct.ci.may_alias(va, vb)),
                    "{name}: may_alias({a}, {b})"
                );
            }
        }

        // call_edges: the full resolved call graph.
        let reply = client
            .request(&Json::obj([
                ("op", Json::str("call_edges")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(label)),
            ]))
            .unwrap();
        let mut want: Vec<(String, String)> = direct
            .ci
            .call
            .iter()
            .map(|&(i, q)| {
                (
                    program.inv_names[i.index()].clone(),
                    program.method_names[q.index()].clone(),
                )
            })
            .collect();
        want.sort();
        let got: Vec<(String, String)> = reply
            .get("edges")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| {
                let pair = e.as_arr().unwrap();
                (
                    pair[0].as_str().unwrap().to_owned(),
                    pair[1].as_str().unwrap().to_owned(),
                )
            })
            .collect();
        assert_eq!(got, want, "{name}: call_edges");

        // reachable: the method set.
        let reply = client
            .request(&Json::obj([
                ("op", Json::str("reachable")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(label)),
            ]))
            .unwrap();
        let mut want: Vec<String> = direct
            .ci
            .reach
            .iter()
            .map(|m| program.method_names[m.index()].clone())
            .collect();
        want.sort();
        assert_eq!(str_arr(&reply, "methods"), want, "{name}: reachable");
    }

    server.shutdown();
    server.join();
}

/// The demand-driven path and a fact-file load agree with the exhaustive
/// context-insensitive answer.
#[test]
fn demand_and_fact_file_paths_agree() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let module = compile(corpus::BOX).unwrap();
    let direct = analyze(&module.program, &AnalysisConfig::insensitive());
    let program = &module.program;

    // The same program through the fact-file path lands on the same digest.
    let digest = client.load_source(corpus::BOX).unwrap();
    let facts = ctxform_ir::text::emit(program);
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("load_facts")),
            ("facts", Json::str(facts)),
        ]))
        .unwrap();
    assert_eq!(reply.get("program").unwrap().as_str(), Some(&*digest));

    for v in 0..program.var_count() {
        let var = ctxform_ir::Var::from_index(v);
        let method = &program.method_names[program.var_method[v].index()];
        let reply = client
            .request(&Json::obj([
                ("op", Json::str("points_to")),
                ("program", Json::str(digest.clone())),
                ("method", Json::str(&**method)),
                ("var", Json::str(&*program.var_names[v])),
                ("demand", Json::Bool(true)),
            ]))
            .unwrap();
        assert_eq!(reply.get("demand").unwrap().as_bool(), Some(true));
        let want: Vec<String> = direct
            .ci
            .points_to(var)
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        assert_eq!(
            str_arr(&reply, "heaps"),
            want,
            "demand {}",
            program.var_names[v]
        );
    }

    server.shutdown();
    server.join();
}

/// A repeated query is answered from cache: `cached` flips to true, the
/// hit counter increments, and no second solve happens.
/// The `(method, var)` names of the program's first variable — a query
/// target that exists in every corpus program.
fn first_var(program: &ctxform_ir::Program) -> (String, String) {
    (
        program.method_names[program.var_method[0].index()].clone(),
        program.var_names[0].clone(),
    )
}

#[test]
fn repeated_query_hits_the_cache() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::LIST).unwrap();
    let (method, var) = first_var(&compile(corpus::LIST).unwrap().program);
    let analyze_req = Json::obj([
        ("op", Json::str("analyze")),
        ("program", Json::str(digest.clone())),
        ("abstraction", Json::str("tstring")),
        ("sensitivity", Json::str("2-object+H")),
    ]);
    let first = client.request(&analyze_req).unwrap();
    assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
    let second = client.request(&analyze_req).unwrap();
    assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
    // Identical counts from the cached database.
    assert_eq!(
        first.get("total").unwrap().as_u64(),
        second.get("total").unwrap().as_u64()
    );

    // A point query on the same (program, config) also hits the cache.
    let reply = client
        .request(&points_to_req(&digest, "2-object+H", &method, &var))
        .unwrap();
    assert_eq!(reply.get("cached").unwrap().as_bool(), Some(true));

    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1), "one solve");
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 2);
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));

    server.shutdown();
    server.join();
}

/// Malformed and invalid requests get typed error replies, not hangups.
#[test]
fn malformed_and_invalid_requests_get_error_replies() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::BOX).unwrap();

    let cases: Vec<(String, &str)> = vec![
        ("this is not json\n".into(), "bad_request"),
        ("[1, 2, 3]\n".into(), "bad_request"),
        ("{\"op\": \"warp\"}\n".into(), "bad_request"),
        (
            "{\"op\": \"load_source\", \"source\": \"class { nope\"}\n".into(),
            "compile_error",
        ),
        (
            "{\"op\": \"load_facts\", \"facts\": \"frobnicate 1\"}\n".into(),
            "fact_error",
        ),
        (
            "{\"op\": \"analyze\", \"program\": \"00000000deadbeef\"}\n".into(),
            "unknown_program",
        ),
        (
            format!(
                "{{\"op\": \"points_to\", \"program\": \"{digest}\", \"method\": \"No.such\", \"var\": \"x\"}}\n"
            ),
            "unknown_method",
        ),
        (
            format!(
                "{{\"op\": \"points_to\", \"program\": \"{digest}\", \"method\": \"Main.main\", \"var\": \"nope\"}}\n"
            ),
            "unknown_var",
        ),
    ];
    for (line, want_code) in cases {
        let reply = client.request_raw(&line).unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false), "{line}");
        assert_eq!(
            reply.get("error").unwrap().as_str(),
            Some(want_code),
            "{line}"
        );
    }

    // The connection is still usable after every error.
    let reply = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert!(reply.get("endpoints").is_some());

    server.shutdown();
    server.join();
}

/// With one shard, one worker, and a queue depth of one, pipelining
/// three slow requests on one connection forces at least one to be shed
/// with a typed `overloaded` reply — deterministically, in reply order,
/// without disturbing the work already accepted.
#[test]
fn overload_is_rejected_explicitly() {
    let server = test_server(|c| {
        c.shards = 1;
        c.threads = 1;
        c.queue_depth = 1;
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let sleep = Json::obj([("op", Json::str("sleep")), ("ms", Json::int(400))]);
    let replies = client
        .pipeline(&[sleep.clone(), sleep.clone(), sleep])
        .unwrap();

    // The first sleep always fits (the queue is empty when it arrives);
    // the worker holds one and the queue one more, so of three pipelined
    // sleeps at least one must be shed. `pipeline` already verified the
    // seq of every reply, so ordering survived the rejection.
    assert_eq!(
        replies[0].get("ok").unwrap().as_bool(),
        Some(true),
        "first sleep must be accepted: {}",
        replies[0].to_line()
    );
    let shed = replies
        .iter()
        .filter(|r| r.get("error").and_then(Json::as_str) == Some("overloaded"))
        .count();
    let slept = replies
        .iter()
        .filter(|r| r.get("ok").unwrap().as_bool() == Some(true))
        .count();
    assert!(shed >= 1, "no pipelined sleep was shed as overloaded");
    assert_eq!(shed + slept, 3, "every request got exactly one reply");
    for r in replies.iter().filter(|r| r.get("slept_ms").is_some()) {
        assert_eq!(r.get("slept_ms").unwrap().as_u64(), Some(400));
    }

    // The connection is still usable, and the shard counted the shed.
    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let detail = stats.get("shard_detail").unwrap().as_arr().unwrap();
    let rejected: u64 = detail
        .iter()
        .map(|s| s.get("rejected").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(rejected, shed as u64, "shard rejected counter disagrees");

    server.shutdown();
    server.join();
}

/// Work finishing past the configured deadline is answered with
/// `deadline_exceeded`.
#[test]
fn deadline_is_enforced() {
    let server = test_server(|c| c.deadline = Duration::from_millis(100));
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client
        .request_raw("{\"op\": \"sleep\", \"ms\": 600}\n")
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(
        reply.get("error").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    // A fast request on the same connection still succeeds.
    let reply = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert!(reply.get("uptime_ms").is_some());
    server.shutdown();
    server.join();
}

/// Loadgen with 8 pipelined, batching connections completes with zero
/// protocol errors (which includes per-reply `seq` verification), and
/// shutdown drains in-flight requests before the daemon exits.
#[test]
fn loadgen_runs_clean_and_shutdown_drains() {
    let server = test_server(|c| {
        c.threads = 4;
        // 8 connections x pipeline 4 can converge on one shard's queue.
        c.queue_depth = 64;
    });
    let addr = server.addr();
    let report = loadgen(
        addr,
        &LoadGenConfig {
            connections: 8,
            pipeline: 4,
            batch: 8,
            duration: Duration::from_millis(1200),
            sensitivity: "2-object+H".into(),
            ..LoadGenConfig::default()
        },
    )
    .expect("loadgen setup");
    assert_eq!(report.errors, 0, "protocol errors under concurrency");
    assert!(
        report.requests > 8,
        "only {} requests completed",
        report.requests
    );
    assert!(
        report.queries > report.requests,
        "batched requests must answer more logical queries ({}) than wire \
         requests ({})",
        report.queries,
        report.requests
    );
    assert!(report.latency_ms.max >= report.latency_ms.p50);
    assert!(
        report
            .per_op
            .iter()
            .any(|(op, stats)| op == "points_to_batch" && stats.count > 0),
        "per-op breakdown is missing the batch op: {:?}",
        report.per_op
    );

    // Graceful shutdown while a slow request is in flight: the sleeper
    // must still get its reply (drain), and join must return.
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.request_raw("{\"op\": \"sleep\", \"ms\": 400}\n")
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).unwrap();
    let reply = client
        .request(&Json::obj([("op", Json::str("shutdown"))]))
        .unwrap();
    assert_eq!(reply.get("draining").unwrap().as_bool(), Some(true));
    let slept = sleeper.join().unwrap().expect("in-flight request drained");
    assert_eq!(slept.get("ok").unwrap().as_bool(), Some(true));

    let report = server.join();
    assert!(report.contains("served"), "shutdown report: {report}");

    // The daemon is really gone: new connections fail or get no service.
    std::thread::sleep(Duration::from_millis(100));
    let alive = Client::connect(addr)
        .ok()
        .map(|mut c| c.request(&Json::obj([("op", Json::str("stats"))])).is_ok())
        .unwrap_or(false);
    assert!(!alive, "server still answering after join");
}

/// The `metrics` endpoint returns a parseable Prometheus text exposition
/// covering the serving layer, the database cache, and the solver's
/// per-rule counters.
#[test]
fn metrics_endpoint_serves_valid_prometheus_exposition() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    // One fresh solve so cache counters move and the solver registry has
    // per-rule series to render.
    let digest = client.load_source(corpus::BOX).unwrap();
    client
        .request(&Json::obj([
            ("op", Json::str("analyze")),
            ("program", Json::str(digest.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("2-object+H")),
        ]))
        .unwrap();

    let reply = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    assert_eq!(
        reply.get("content_type").unwrap().as_str(),
        Some("text/plain; version=0.0.4")
    );
    let text = reply.get("exposition").unwrap().as_str().unwrap();

    // Strict scrape: every line is a comment or `name{labels} value` with
    // a float-parseable value, and every sample's metric family was
    // declared by a preceding # TYPE line.
    let mut declared = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a metric name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad kind in {line:?}"
            );
            declared.insert(name.to_owned());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = series.split('{').next().unwrap();
        let family = name
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            declared.contains(name) || declared.contains(family),
            "undeclared family for sample {line:?}"
        );
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
    }

    // Endpoint latencies.
    assert!(text.contains("# TYPE ctxform_request_duration_seconds histogram"));
    assert!(text
        .contains("ctxform_request_duration_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 1"));
    assert!(text.contains("ctxform_requests_total{endpoint=\"analyze\"} 1"));
    // Database cache counters.
    assert!(text.contains("ctxform_db_cache_hits_total "));
    assert!(text.contains("ctxform_db_cache_misses_total 1"));
    assert!(text.contains("ctxform_db_cache_evictions_total 0"));
    // Solver rule counters fed by the fresh solve.
    assert!(text.contains("ctxform_solver_solves_total 1"));
    assert!(
        text.contains("ctxform_solver_rule_fired_total{rule=\"New\"}"),
        "missing per-rule counter in:\n{text}"
    );
    assert!(text.contains("ctxform_solver_rule_derived_total{rule=\"Reach\"}"));
    assert!(text.contains("ctxform_solver_solve_seconds_count 1"));
    // Tracing / logging health series (present even with tracing off).
    assert!(text.contains("ctxform_trace_dropped_total "));
    assert!(text.contains("ctxform_trace_enabled "));
    assert!(text.contains("ctxform_log_emitted_total "));
    // Solver profiling series fed by the fresh (profiled) solve.
    assert!(text.contains("ctxform_solver_profiled_solves_total 1"));
    assert!(text.contains("ctxform_solver_phase_seconds_total{phase=\"eval\"}"));
    assert!(
        text.contains("ctxform_solver_rule_seconds_total{rule=\"New\"}"),
        "missing per-rule time counter in:\n{text}"
    );
    assert!(text.contains("ctxform_solver_bytes{section="));

    server.shutdown();
    server.join();
}

/// Client-supplied trace ids are echoed in replies, and the `trace`
/// endpoint returns the in-process trace ring as structured JSON.
#[test]
fn trace_ids_echo_and_trace_endpoint_round_trips() {
    let _gate = trace_gate();
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();

    // Without a trace id the reply has no trace field.
    let reply = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert!(reply.get("trace").is_none());

    // With one, it is echoed verbatim — on successes and on errors.
    let reply = client
        .request_raw("{\"op\": \"stats\", \"trace\": \"req-007\"}\n")
        .unwrap();
    assert_eq!(reply.get("trace").unwrap().as_str(), Some("req-007"));
    let reply = client
        .request_raw("{\"op\": \"warp\", \"trace\": \"req-008\"}\n")
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(reply.get("trace").unwrap().as_str(), Some("req-008"));

    // The trace endpoint reports disabled + empty until tracing is on.
    let reply = client
        .request(&Json::obj([("op", Json::str("trace"))]))
        .unwrap();
    assert_eq!(reply.get("enabled").unwrap().as_bool(), Some(false));

    // Server workers share this process's trace ring, so enabling tracing
    // here makes their request spans visible to the trace endpoint.
    ctxform_obs::enable_tracing(4096);
    client
        .request_raw("{\"op\": \"stats\", \"trace\": \"req-traced\"}\n")
        .unwrap();
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("trace")),
            ("limit", Json::int(256)),
        ]))
        .unwrap();
    ctxform_obs::disable_tracing();
    ctxform_obs::clear_trace();
    assert_eq!(reply.get("enabled").unwrap().as_bool(), Some(true));
    assert!(reply.get("dropped").unwrap().as_u64().is_some());
    let records = reply.get("records").unwrap().as_arr().unwrap();
    let traced = records.iter().find(|r| {
        r.get("name").and_then(Json::as_str) == Some("server.request")
            && r.get("fields")
                .and_then(|f| f.get("trace"))
                .and_then(Json::as_str)
                == Some("req-traced")
    });
    let span = traced.expect("request span with the client's trace id in the ring");
    assert_eq!(span.get("kind").unwrap().as_str(), Some("span"));
    assert_eq!(
        span.get("fields")
            .unwrap()
            .get("endpoint")
            .unwrap()
            .as_str(),
        Some("stats")
    );
    assert_eq!(
        span.get("fields").unwrap().get("ok").unwrap().as_bool(),
        Some(true)
    );

    server.shutdown();
    server.join();
}

/// Requests slower than the configured threshold land in the structured
/// slow-query log with their endpoint and trace id.
#[test]
fn slow_queries_are_logged_with_trace_ids() {
    let captured = ctxform_obs::logger::capture();
    let server = test_server(|c| c.slow_query_ms = 10);
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .request_raw("{\"op\": \"sleep\", \"ms\": 50, \"trace\": \"slowpoke\"}\n")
        .unwrap();
    client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    server.shutdown();
    server.join();
    ctxform_obs::logger::log_to_stderr();

    let lines = captured.lock().unwrap();
    let slow: Vec<&String> = lines.iter().filter(|l| l.contains("slow query")).collect();
    assert!(
        slow.iter()
            .any(|l| l.contains("endpoint=sleep") && l.contains("trace=slowpoke")),
        "no slow-query line for the sleeper in {lines:?}"
    );
    assert!(
        !slow.iter().any(|l| l.contains("endpoint=stats")),
        "fast request must not hit the slow-query log"
    );
}

/// Three revisions of one program for the `update` endpoint: each `V<n+1>`
/// appends a driver class to `V<n>`, so V0→V1→V2 are purely-additive edits
/// while any reverse step is non-monotone.
const UPD_V0: &str = "class Box { Object item;
        void put(Object o) { this.item = o; }
        Object get() { Object r = this.item; return r; }
    }
    class Main {
        public static void main(String[] args) {
            Box b = new Box();
            Object o = new Object();
            b.put(o);
            Object r = b.get();
        }
    }";

fn upd_v1() -> String {
    format!(
        "{UPD_V0}
    class EditA {{
        public static void main(String[] args) {{
            Box b2 = new Box();
            Object p = new Object();
            b2.put(p);
            Object q = b2.get();
        }}
    }}"
    )
}

fn upd_v2() -> String {
    format!(
        "{}
    class EditB {{
        public static void main(String[] args) {{
            Box b3 = new Box();
            b3.put(new Object());
            Object s = b3.get();
        }}
    }}",
        upd_v1()
    )
}

fn update_req(base: &str, source: &str) -> Json {
    Json::obj([
        ("op", Json::str("update")),
        ("base", Json::str(base)),
        ("source", Json::str(source)),
        ("abstraction", Json::str("tstring")),
        ("sensitivity", Json::str("2-object+H")),
    ])
}

/// The `update` endpoint: an edit chain reuses cached databases
/// incrementally, non-monotone edits fall back, the edited program's
/// solution lands in the result cache, and the new counters are scraped
/// by both `stats` and `metrics`.
#[test]
fn update_endpoint_reuses_cached_databases() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let d0 = client.load_source(UPD_V0).unwrap();

    // First update: nothing extendable is resident yet, so this is a
    // recorded fallback that *seeds* the database chain.
    let r1 = client.request(&update_req(&d0, &upd_v1())).unwrap();
    assert_eq!(r1.get("incremental").unwrap().as_bool(), Some(false));
    assert_eq!(r1.get("base_cached").unwrap().as_bool(), Some(false));
    assert!(r1
        .get("reason")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("no cached database"));
    let d1 = r1.get("program").unwrap().as_str().unwrap().to_owned();

    // Second update: the V1 database is resident and the edit is purely
    // additive, so the solve resumes incrementally.
    let r2 = client.request(&update_req(&d1, &upd_v2())).unwrap();
    assert_eq!(r2.get("incremental").unwrap().as_bool(), Some(true));
    assert_eq!(r2.get("base_cached").unwrap().as_bool(), Some(true));
    assert!(r2.get("reason").is_none());
    let d2 = r2.get("program").unwrap().as_str().unwrap().to_owned();

    // Bit-identical to a from-scratch solve of the edited program: the
    // canonical fact digest matches a direct local solve.
    let config = AnalysisConfig::transformer_strings("2-object+H".parse().unwrap());
    let scratch = ctxform::AnalysisDb::solve(compile(&upd_v2()).unwrap().program, &config);
    assert_eq!(
        r2.get("fact_digest").unwrap().as_str().unwrap(),
        format!("{:016x}", scratch.fact_digest()),
        "incremental update diverged from a from-scratch solve"
    );

    // The update also populated the ordinary result cache: an analyze of
    // the edited program is answered without another solve.
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("analyze")),
            ("program", Json::str(d2.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("2-object+H")),
        ]))
        .unwrap();
    assert_eq!(reply.get("cached").unwrap().as_bool(), Some(true));

    // A reverse edit removes entities: resident database, but the diff is
    // non-monotone, so the server falls back (and says why).
    let r3 = client.request(&update_req(&d2, UPD_V0)).unwrap();
    assert_eq!(r3.get("incremental").unwrap().as_bool(), Some(false));
    assert_eq!(r3.get("base_cached").unwrap().as_bool(), Some(true));
    assert!(!r3.get("reason").unwrap().as_str().unwrap().is_empty());

    // Both counters are visible to stats and to a Prometheus scrape.
    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("incremental_reuse").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("incremental_fallback").unwrap().as_u64(), Some(2));
    let metrics = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    let text = metrics.get("exposition").unwrap().as_str().unwrap();
    assert!(text.contains("ctxform_db_incremental_reuse_total 1"));
    assert!(text.contains("ctxform_db_incremental_fallback_total 2"));

    // Unknown base digests stay typed errors.
    let reply = client
        .request_raw(&format!(
            "{}\n",
            update_req("00000000deadbeef", UPD_V0).to_line()
        ))
        .unwrap();
    assert_eq!(
        reply.get("error").unwrap().as_str(),
        Some("unknown_program")
    );

    server.shutdown();
    server.join();
}

/// The `update` endpoint's deletion path: an identical edit is a noop
/// that performs no solver work, a deleting edit over the fact wire
/// resumes through DRed with a bit-identical digest, the retraction
/// counters reach `stats` and the Prometheus exposition, and demand
/// slices cached for the base digest are never served for the edited
/// program.
#[test]
fn update_endpoint_retracts_and_keeps_demand_slices_fresh() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let d0 = client.load_source(UPD_V0).unwrap();

    // Seed the extendable-database chain (recorded fallback).
    let r1 = client.request(&update_req(&d0, &upd_v1())).unwrap();
    assert_eq!(r1.get("outcome").unwrap().as_str(), Some("fallback"));
    let d1 = r1.get("program").unwrap().as_str().unwrap().to_owned();

    let v1_program = compile(&upd_v1()).unwrap().program;
    let r_var = (0..v1_program.var_count())
        .find(|&v| {
            v1_program.var_names[v] == "r"
                && v1_program.method_names[v1_program.var_method[v].index()] == "Main.main"
        })
        .expect("Main.main declares r");
    let query_label = "1-object";
    let query = |client: &mut Client, digest: &str| {
        client
            .request(&Json::obj([
                ("op", Json::str("query")),
                ("program", Json::str(digest)),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(query_label)),
                ("method", Json::str("Main.main")),
                ("var", Json::str("r")),
            ]))
            .unwrap()
    };
    let query_config = AnalysisConfig::transformer_strings(query_label.parse().unwrap());
    let heaps_of = |program: &ctxform_ir::Program, result: &ctxform::AnalysisResult| {
        result
            .ci
            .points_to(ctxform_ir::Var::from_index(r_var))
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect::<Vec<String>>()
    };

    // Prime a demand slice for the base digest; a repeat reuses it.
    let direct_v1 = analyze(&v1_program, &query_config);
    let want_v1 = heaps_of(&v1_program, &direct_v1);
    assert!(
        !want_v1.is_empty(),
        "r must point somewhere before the edit"
    );
    let q1 = query(&mut client, &d1);
    assert_eq!(q1.get("demand").unwrap().as_bool(), Some(true));
    assert_eq!(str_arr(&q1, "heaps"), want_v1);
    let q1_again = query(&mut client, &d1);
    assert_eq!(q1_again.get("slice_reused").unwrap().as_bool(), Some(true));

    // Identical edit: a noop that re-derives nothing. (The resumed
    // database used to re-report the base solve's counters here.)
    let r2 = client.request(&update_req(&d1, &upd_v1())).unwrap();
    assert_eq!(r2.get("outcome").unwrap().as_str(), Some("noop"));
    assert_eq!(r2.get("incremental").unwrap().as_bool(), Some(true));
    assert_eq!(r2.get("program").unwrap().as_str(), Some(&*d1));
    assert_eq!(
        r2.get("facts_derived").unwrap().as_u64(),
        Some(0),
        "an identical update must report zero derived facts"
    );

    // Deleting edit over the fact wire: drop the only `store` tuple
    // (Box.put's `this.item = o`), so every hpts fact and the pointee of
    // `r = b.get()` must be retracted.
    let mut retracted = v1_program.clone();
    retracted.facts.store.clear();
    let facts = ctxform_ir::text::emit(&retracted);
    let r3 = client
        .request(&Json::obj([
            ("op", Json::str("update")),
            ("base", Json::str(d1.clone())),
            ("facts", Json::str(facts)),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("2-object+H")),
        ]))
        .unwrap();
    assert_eq!(r3.get("outcome").unwrap().as_str(), Some("retracted"));
    assert_eq!(r3.get("incremental").unwrap().as_bool(), Some(true));
    assert_eq!(r3.get("base_cached").unwrap().as_bool(), Some(true));
    assert!(
        r3.get("overdeleted").unwrap().as_u64().unwrap() > 0,
        "dropping the store must over-delete its consequences"
    );
    let dr = r3.get("program").unwrap().as_str().unwrap().to_owned();
    assert_ne!(dr, d1);
    let config = AnalysisConfig::transformer_strings("2-object+H".parse().unwrap());
    let scratch = ctxform::AnalysisDb::solve(retracted.clone(), &config);
    assert_eq!(
        r3.get("fact_digest").unwrap().as_str().unwrap(),
        format!("{:016x}", scratch.fact_digest()),
        "DRed update diverged from a from-scratch solve"
    );

    // Freshness across the edit: the same query on the new digest must be
    // answered against the retracted program — never from the slice
    // cached under the base digest.
    let direct_r = analyze(&retracted, &query_config);
    let want_r = heaps_of(&retracted, &direct_r);
    assert_ne!(want_r, want_v1, "the retraction must change r's answer");
    let q2 = query(&mut client, &dr);
    assert_eq!(q2.get("slice_reused").unwrap().as_bool(), Some(false));
    assert_eq!(str_arr(&q2, "heaps"), want_r);
    // The base digest's slice is untouched and still serves old answers.
    let q3 = query(&mut client, &d1);
    assert_eq!(str_arr(&q3, "heaps"), want_v1);

    // Counters reach stats and the Prometheus exposition.
    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("incremental_noop").unwrap().as_u64(), Some(1));
    assert_eq!(
        cache.get("incremental_retract_reuse").unwrap().as_u64(),
        Some(1)
    );
    assert!(
        cache
            .get("incremental_overdeleted")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    let metrics = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    let text = metrics.get("exposition").unwrap().as_str().unwrap();
    for needle in [
        "ctxform_db_incremental_noop_total 1",
        "ctxform_db_incremental_retract_reuse_total 1",
        "ctxform_db_incremental_overdeleted_total",
        "ctxform_db_incremental_rederived_total",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    server.shutdown();
    server.join();
}

/// Concurrent clients issuing the same cold query coalesce onto one solve.
#[test]
fn concurrent_cold_queries_solve_once() {
    let server = test_server(|_| {});
    let addr = server.addr();
    let mut setup = Client::connect(addr).unwrap();
    let digest = Arc::new(setup.load_source(corpus::DISPATCH).unwrap());
    let (method, var) = first_var(&compile(corpus::DISPATCH).unwrap().program);
    let target = Arc::new((method, var));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let digest = digest.clone();
        let target = target.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .request(&points_to_req(&digest, "2-object+H", &target.0, &target.1))
                .unwrap()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = setup
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1), "one solve");
    server.shutdown();
    server.join();
}

/// Three connections each pipeline 64 mixed-op requests; every reply
/// comes back in request order with the right `seq` (checked by
/// [`Client::pipeline`]) and the right echoed trace id, and every answer
/// equals a direct `analyze` of the same program (`ci_digest` parity for
/// analyze, heap-set parity for points-to).
#[test]
fn pipelined_requests_reply_in_order_with_parity() {
    // Queues must absorb the full burst: 3 connections x 64 pipelined
    // requests can all land on one shard before its workers drain any.
    let server = test_server(|c| c.queue_depth = 256);
    let addr = server.addr();
    let label = "2-object+H";
    let config = AnalysisConfig::transformer_strings(label.parse().unwrap());

    // Direct answers per corpus program to compare against.
    let mut setup = Client::connect(addr).unwrap();
    let mut programs: Vec<(String, String, String, String, Vec<String>)> = Vec::new();
    for (_, source) in corpus::all() {
        let module = compile(source).unwrap();
        let direct = analyze(&module.program, &config);
        let digest = setup.load_source(source).unwrap();
        let (method, var) = first_var(&module.program);
        let heaps: Vec<String> = direct
            .ci
            .points_to(ctxform_ir::Var::from_index(0))
            .iter()
            .map(|h| module.program.heap_names[h.index()].clone())
            .collect();
        programs.push((digest, digest_str(ci_digest(&direct)), method, var, heaps));
    }
    let programs = Arc::new(programs);

    let handles: Vec<_> = (0..3)
        .map(|conn| {
            let programs = programs.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut bodies = Vec::new();
                for i in 0..64usize {
                    let (digest, _, method, var, _) = &programs[i % programs.len()];
                    let trace = format!("c{conn}-r{i}");
                    let body = match i % 3 {
                        0 => Json::obj([
                            ("op", Json::str("analyze")),
                            ("program", Json::str(digest.clone())),
                            ("abstraction", Json::str("tstring")),
                            ("sensitivity", Json::str("2-object+H")),
                            ("trace", Json::str(trace)),
                        ]),
                        1 => Json::obj([
                            ("op", Json::str("points_to")),
                            ("program", Json::str(digest.clone())),
                            ("abstraction", Json::str("tstring")),
                            ("sensitivity", Json::str("2-object+H")),
                            ("method", Json::str(method.clone())),
                            ("var", Json::str(var.clone())),
                            ("trace", Json::str(trace)),
                        ]),
                        _ => Json::obj([
                            ("op", Json::str("reachable")),
                            ("program", Json::str(digest.clone())),
                            ("abstraction", Json::str("tstring")),
                            ("sensitivity", Json::str("2-object+H")),
                            ("trace", Json::str(trace)),
                        ]),
                    };
                    bodies.push(body);
                }
                // `pipeline` writes all 64 lines before reading a single
                // reply and verifies every reply's seq.
                let replies = client.pipeline(&bodies).unwrap();
                assert_eq!(replies.len(), 64);
                for (i, reply) in replies.iter().enumerate() {
                    let (_, ci, _, _, heaps) = &programs[i % programs.len()];
                    assert_eq!(
                        reply.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "c{conn}-r{i}: {}",
                        reply.to_line()
                    );
                    assert_eq!(
                        reply.get("trace").and_then(Json::as_str),
                        Some(format!("c{conn}-r{i}").as_str()),
                        "trace must match the request at this position"
                    );
                    match i % 3 {
                        0 => assert_eq!(
                            reply.get("ci_digest").and_then(Json::as_str),
                            Some(ci.as_str()),
                            "c{conn}-r{i}: analyze diverged from direct analyze"
                        ),
                        1 => assert_eq!(
                            &str_arr(reply, "heaps"),
                            heaps,
                            "c{conn}-r{i}: points_to diverged from direct analyze"
                        ),
                        _ => assert!(
                            !str_arr(reply, "methods").is_empty(),
                            "c{conn}-r{i}: no reachable methods"
                        ),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    server.shutdown();
    server.join();
}

/// A 100 MB request line is answered with a typed `too_large` error while
/// the tail is still arriving — the shard buffers at most the 4 MiB line
/// bound plus one read chunk, never the full payload — and the connection
/// (and its `seq` numbering) stays usable afterwards.
#[test]
fn oversized_line_gets_too_large_without_buffering_it() {
    use std::io::{Read, Write};

    let server = test_server(|_| {});
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let read_line = |stream: &mut std::net::TcpStream, held: &mut Vec<u8>| -> Json {
        loop {
            if let Some(pos) = held.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = held.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line).into_owned();
                return Json::parse(text.trim()).unwrap_or_else(|_| panic!("bad reply: {text}"));
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).expect("reply before EOF");
            assert!(n > 0, "server hung up instead of replying too_large");
            held.extend_from_slice(&chunk[..n]);
        }
    };
    let mut held = Vec::new();

    // One newline-less 100 MB line, streamed in 1 MiB chunks. The server
    // must answer (and keep draining) long before the payload ends — if
    // it buffered the line, this test would grow the process by 100 MB
    // per run and the bounded-read assertion below would be meaningless.
    stream
        .write_all(b"{\"op\": \"stats\", \"junk\": \"")
        .unwrap();
    let chunk = vec![b'a'; 1 << 20];
    for _ in 0..100 {
        stream.write_all(&chunk).unwrap();
    }
    stream.write_all(b"\"}\n").unwrap();

    let reply = read_line(&mut stream, &mut held);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("error").and_then(Json::as_str),
        Some("too_large"),
        "want a typed too_large reply: {}",
        reply.to_line()
    );
    assert_eq!(
        reply.get("seq").and_then(Json::as_u64),
        Some(1),
        "the oversized line consumed seq 1"
    );

    // The connection survived: a normal request works and continues the
    // per-connection seq numbering.
    stream.write_all(b"{\"op\": \"stats\"}\n").unwrap();
    let reply = read_line(&mut stream, &mut held);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("seq").and_then(Json::as_u64), Some(2));
    assert!(reply.get("uptime_ms").is_some());

    server.shutdown();
    server.join();
}

/// `points_to_batch` answers every variable of a program in one framed
/// round-trip, each slot equal to the direct `analyze` answer, with
/// unknown variables failing per-slot instead of failing the batch.
#[test]
fn points_to_batch_matches_direct_analyze_per_slot() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let label = "2-object+H";
    let config = AnalysisConfig::transformer_strings(label.parse().unwrap());
    let module = compile(corpus::LIST).unwrap();
    let program = &module.program;
    let direct = analyze(program, &config);
    let digest = client.load_source(corpus::LIST).unwrap();

    let mut items: Vec<Json> = (0..program.var_count())
        .map(|v| {
            Json::obj([
                (
                    "method",
                    Json::str(&*program.method_names[program.var_method[v].index()]),
                ),
                ("var", Json::str(&*program.var_names[v])),
            ])
        })
        .collect();
    items.push(Json::obj([
        ("method", Json::str("Main.main")),
        ("var", Json::str("no_such_var")),
    ]));

    let reply = client
        .request(&Json::obj([
            ("op", Json::str("points_to_batch")),
            ("program", Json::str(digest.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str(label)),
            ("vars", Json::Arr(items)),
        ]))
        .unwrap();
    let n = program.var_count();
    assert_eq!(reply.get("count").unwrap().as_u64(), Some(n as u64 + 1));
    assert_eq!(reply.get("found").unwrap().as_u64(), Some(n as u64));
    let results = reply.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), n + 1, "results are positional");
    for (v, slot) in results.iter().enumerate().take(n) {
        let want: Vec<String> = direct
            .ci
            .points_to(ctxform_ir::Var::from_index(v))
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        assert_eq!(
            str_arr(slot, "heaps"),
            want,
            "batch slot {v} ({}) diverged from direct analyze",
            program.var_names[v]
        );
    }
    assert_eq!(
        results[n].get("error").and_then(Json::as_str),
        Some("unknown_var"),
        "unknown variable must fail its own slot only: {}",
        results[n].to_line()
    );

    // An oversized batch is a typed error, not unbounded work.
    let many: Vec<Json> = (0..65_537)
        .map(|_| Json::obj([("method", Json::str("Main.main")), ("var", Json::str("x"))]))
        .collect();
    let reply = client
        .request_raw(&format!(
            "{}\n",
            Json::obj([
                ("op", Json::str("points_to_batch")),
                ("program", Json::str(digest)),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(label)),
                ("vars", Json::Arr(many)),
            ])
            .to_line()
        ))
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));

    server.shutdown();
    server.join();
}

/// Shard routing is visible end to end: `stats` reports the per-shard
/// split (summing to the aggregate the legacy fields still carry), hot
/// digests replicate to a second shard once past the threshold, and the
/// `metrics` exposition serves per-shard `ctxform_shard_*` series.
#[test]
fn shards_report_stats_and_prometheus_series() {
    let server = test_server(|c| {
        c.shards = 2;
        c.replicate_hot = Some(3);
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let mut digests = Vec::new();
    for (_, source) in corpus::all() {
        let digest = client.load_source(source).unwrap();
        client
            .request(&Json::obj([
                ("op", Json::str("analyze")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str("2-object+H")),
            ]))
            .unwrap();
        digests.push(digest);
    }
    // Hammer one digest past the replication threshold; once replicated,
    // its reads alternate between two distinct shards.
    for _ in 0..8 {
        client
            .request(&Json::obj([
                ("op", Json::str("analyze")),
                ("program", Json::str(digests[0].clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str("2-object+H")),
            ]))
            .unwrap();
    }

    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert_eq!(stats.get("shards").unwrap().as_u64(), Some(2));
    assert!(
        stats.get("replicated_digests").unwrap().as_u64().unwrap() >= 1,
        "hot digest did not replicate: {}",
        stats.to_line()
    );
    let detail = stats.get("shard_detail").unwrap().as_arr().unwrap();
    assert_eq!(detail.len(), 2);
    for (shard, snap) in detail.iter().enumerate() {
        assert!(
            snap.get("routed").unwrap().as_u64().unwrap() > 0,
            "shard {shard} served nothing — replication alternation broken: {}",
            stats.to_line()
        );
    }
    // The aggregate `cache` block is the sum of the per-shard split, so
    // pre-sharding clients keep working unchanged.
    let cache = stats.get("cache").unwrap();
    for (agg, per) in [("hits", "hits"), ("misses", "misses")] {
        let sum: u64 = detail
            .iter()
            .map(|s| s.get(per).unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            cache.get(agg).unwrap().as_u64(),
            Some(sum),
            "aggregate `{agg}` disagrees with the shard split"
        );
    }

    let metrics = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    let text = metrics.get("exposition").unwrap().as_str().unwrap();
    for series in [
        "ctxform_shard_queue_depth{shard=\"0\"}",
        "ctxform_shard_queue_depth{shard=\"1\"}",
        "ctxform_shard_routed_total{shard=\"0\"}",
        "ctxform_shard_routed_total{shard=\"1\"}",
        "ctxform_shard_rejected_total{shard=\"0\"}",
        "ctxform_shard_cache_hits_total{shard=\"0\"}",
        "ctxform_shard_cache_misses_total{shard=\"1\"}",
        "ctxform_shard_replicated_digests 1",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }

    server.shutdown();
    server.join();
}

/// Cold context-sensitive `query` requests are answered by the demand
/// engine (no full solve) with the exact exhaustive points-to sets; once
/// a solved database is resident the same query is answered from it.
#[test]
fn query_answers_context_sensitively_without_full_solve() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let module = compile(corpus::LIST).unwrap();
    let program = &module.program;
    let digest = client.load_source(corpus::LIST).unwrap();
    let label = "1-call";
    let direct = analyze(
        &module.program,
        &AnalysisConfig::transformer_strings(label.parse().unwrap()),
    );

    let query = |client: &mut Client, v: usize| {
        client
            .request(&Json::obj([
                ("op", Json::str("query")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(label)),
                (
                    "method",
                    Json::str(&*program.method_names[program.var_method[v].index()]),
                ),
                ("var", Json::str(&*program.var_names[v])),
            ]))
            .unwrap()
    };

    // Cold: every variable answered by the demand engine, byte-identical
    // to the exhaustive analysis.
    for v in 0..program.var_count() {
        let reply = query(&mut client, v);
        assert_eq!(reply.get("demand").unwrap().as_bool(), Some(true), "{v}");
        assert_eq!(reply.get("cached").unwrap().as_bool(), Some(false), "{v}");
        let want: Vec<String> = direct
            .ci
            .points_to(ctxform_ir::Var::from_index(v))
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        assert_eq!(
            str_arr(&reply, "heaps"),
            want,
            "query {}",
            program.var_names[v]
        );
    }

    // Re-querying the same variable reuses the cached demand slice.
    let again = query(&mut client, 0);
    assert_eq!(again.get("slice_reused").unwrap().as_bool(), Some(true));

    // After a full solve the same query is answered from the solved db.
    client
        .request(&Json::obj([
            ("op", Json::str("analyze")),
            ("program", Json::str(digest.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str(label)),
        ]))
        .unwrap();
    // Replicas on every shard: query routes by digest, so hit each var
    // once more and require the cached-db path on the var's shard.
    let (mut saw_cached, mut parity) = (false, true);
    for v in 0..program.var_count() {
        let reply = query(&mut client, v);
        if reply.get("cached").unwrap().as_bool() == Some(true) {
            saw_cached = true;
            assert_eq!(reply.get("demand").unwrap().as_bool(), Some(false));
        }
        let want: Vec<String> = direct
            .ci
            .points_to(ctxform_ir::Var::from_index(v))
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        parity &= str_arr(&reply, "heaps") == want;
    }
    assert!(parity, "post-solve answers must still match");
    assert!(saw_cached, "at least one query lands on the solved shard");

    // Subsumption is the one unsupported configuration: typed error.
    let err = client
        .request(&Json::obj([
            ("op", Json::str("query")),
            ("program", Json::str(digest.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str(label)),
            ("subsumption", Json::Bool(true)),
            (
                "method",
                Json::str(&*program.method_names[program.var_method[0].index()]),
            ),
            ("var", Json::str(&*program.var_names[0])),
        ]))
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("bad_request") && msg.contains("subsumption"),
        "want a typed bad_request for subsumption, got: {msg}"
    );

    // The demand counters made it into the exposition.
    let metrics = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    let text = metrics.get("exposition").unwrap().as_str().unwrap();
    for series in [
        "ctxform_demand_queries_total{mode=\"sliced\"}",
        "ctxform_demand_slice_reuse_total{outcome=\"hit\"}",
        "ctxform_demand_demanded_tuples_total",
        "ctxform_demand_sliced_facts_total",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }

    server.shutdown();
    server.join();
}

/// `query_batch` answers positionally and keeps unknown variables as
/// per-slot error objects rather than failing the whole request.
#[test]
fn query_batch_mixes_answers_and_per_slot_errors() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let module = compile(corpus::BOX).unwrap();
    let program = &module.program;
    let digest = client.load_source(corpus::BOX).unwrap();
    let direct = analyze(
        &module.program,
        &AnalysisConfig::transformer_strings("1-object".parse().unwrap()),
    );

    let mut vars = Vec::new();
    for v in 0..program.var_count().min(3) {
        vars.push(Json::obj([
            (
                "method",
                Json::str(&*program.method_names[program.var_method[v].index()]),
            ),
            ("var", Json::str(&*program.var_names[v])),
        ]));
    }
    vars.push(Json::obj([
        ("method", Json::str("Main.main")),
        ("var", Json::str("no_such_var")),
    ]));
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("query_batch")),
            ("program", Json::str(digest.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("1-object")),
            ("vars", Json::Arr(vars)),
        ]))
        .unwrap();
    assert_eq!(reply.get("demand").unwrap().as_bool(), Some(true));
    let count = reply.get("count").unwrap().as_u64().unwrap() as usize;
    let found = reply.get("found").unwrap().as_u64().unwrap() as usize;
    assert_eq!(count, found + 1, "exactly one unknown slot");
    let results = reply.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), count);
    for (i, slot) in results.iter().enumerate().take(found) {
        let got: Vec<String> = slot
            .get("heaps")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|h| h.as_str().unwrap().to_owned())
            .collect();
        let want: Vec<String> = direct
            .ci
            .points_to(ctxform_ir::Var::from_index(i))
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        assert_eq!(got, want, "slot {i}");
    }
    assert_eq!(
        results[found].get("error").unwrap().as_str(),
        Some("unknown_var")
    );

    server.shutdown();
    server.join();
}

/// `--op query` loadgen drives only demand ops, cleanly, under
/// pipelining and sharding.
#[test]
fn loadgen_query_op_drives_demand_mix_cleanly() {
    let server = test_server(|c| {
        c.threads = 4;
        c.queue_depth = 64;
    });
    let report = loadgen(
        server.addr(),
        &LoadGenConfig {
            connections: 4,
            pipeline: 4,
            batch: 4,
            duration: Duration::from_millis(800),
            sensitivity: "1-call".into(),
            op: "query".into(),
            trace_sample: 2,
        },
    )
    .expect("loadgen setup");
    assert_eq!(report.errors, 0, "demand loadgen must run clean");
    assert!(report.requests > 0);
    // 1-in-2 requests carried a trace id; the report splits their
    // client-observed latency into server time vs overhead.
    let ts = report.trace_sample.as_ref().expect("trace sample stats");
    assert_eq!(ts.every, 2);
    assert!(ts.sampled > 0, "some requests must have been traced");
    assert!(
        ts.server_ms.p50 <= ts.client_ms.p50,
        "server `took_us` cannot exceed the client-observed latency \
         (server p50 {} ms vs client p50 {} ms)",
        ts.server_ms.p50,
        ts.client_ms.p50
    );
    for op in ["query", "query_batch"] {
        assert!(
            report.per_op.iter().any(|(o, s)| o == op && s.count > 0),
            "per-op breakdown is missing `{op}`: {:?}",
            report.per_op
        );
    }
    assert!(
        report
            .per_op
            .iter()
            .all(|(o, _)| o == "query" || o == "query_batch"),
        "demand mix must contain only demand ops: {:?}",
        report.per_op
    );
    server.shutdown();
    server.join();
}

/// A pipelined batch of 64 requests across 2 shards: every reply's span
/// tree decomposes end-to-end latency into queue wait, solve, and
/// serialize phases, all parented under one `server.request` root
/// carrying that request's trace id — and traced replies carry the
/// server-side `took_us`.
#[test]
fn request_spans_decompose_queue_solve_serialize() {
    let _gate = trace_gate();
    ctxform_obs::enable_tracing(65_536);
    // Queues must absorb the burst: all 64 pipelined requests can land
    // before either shard's workers drain any.
    let server = test_server(|c| c.queue_depth = 256);
    let mut client = Client::connect(server.addr()).unwrap();
    // Several corpus programs, consistent-hashed across both shards.
    let digests: Vec<String> = corpus::all()
        .iter()
        .map(|(_, source)| client.load_source(source).unwrap())
        .collect();

    let bodies: Vec<Json> = (0..64usize)
        .map(|i| {
            let digest = &digests[i % digests.len()];
            Json::obj([
                ("op", Json::str("reachable")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str("2-object+H")),
                ("trace", Json::str(format!("span-{i}"))),
            ])
        })
        .collect();
    let replies = client.pipeline(&bodies).unwrap();
    assert_eq!(replies.len(), 64);
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            reply.get("trace").and_then(Json::as_str),
            Some(format!("span-{i}").as_str())
        );
        assert!(
            reply.get("took_us").and_then(Json::as_u64).is_some(),
            "traced replies must report server time: {}",
            reply.to_line()
        );
    }
    // Untraced replies carry neither a trace id nor `took_us`.
    let plain = client
        .request(&Json::obj([
            ("op", Json::str("reachable")),
            ("program", Json::str(digests[0].clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("2-object+H")),
        ]))
        .unwrap();
    assert!(plain.get("trace").is_none());
    assert!(plain.get("took_us").is_none());

    let dump = client
        .request(&Json::obj([("op", Json::str("trace"))]))
        .unwrap();
    ctxform_obs::disable_tracing();
    ctxform_obs::clear_trace();
    server.shutdown();
    server.join();

    let records = dump.get("records").unwrap().as_arr().unwrap();
    for i in 0..64usize {
        let trace = format!("span-{i}");
        let root = records
            .iter()
            .find(|r| {
                r.get("name").and_then(Json::as_str) == Some("server.request")
                    && r.get("fields")
                        .and_then(|f| f.get("trace"))
                        .and_then(Json::as_str)
                        == Some(trace.as_str())
            })
            .unwrap_or_else(|| panic!("no server.request root for {trace}"));
        let root_id = root.get("id").unwrap().as_u64().unwrap();
        let children: Vec<&str> = records
            .iter()
            .filter(|r| r.get("parent").and_then(Json::as_u64) == Some(root_id))
            .map(|r| r.get("name").and_then(Json::as_str).unwrap())
            .collect();
        for phase in ["server.queue_wait", "server.solve", "server.serialize"] {
            assert!(
                children.contains(&phase),
                "{trace}: root span is missing the `{phase}` child; got {children:?}"
            );
        }
    }
}

/// The `profile` op exposes the always-on solver profile: per-rule and
/// per-phase time, the memory footprint, and folded stacks — and
/// `--no-profile` turns the whole thing into zeros without changing
/// answers.
#[test]
fn profile_op_reports_rules_phases_and_folded_stacks() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::BOX).unwrap();
    let traced = client
        .request(&points_to_req(&digest, "2-object+H", "Main.main", "r1"))
        .unwrap();
    let heaps = str_arr(&traced, "heaps");

    let profile = client
        .request(&Json::obj([("op", Json::str("profile"))]))
        .unwrap();
    assert_eq!(profile.get("enabled").unwrap().as_bool(), Some(true));
    assert!(profile.get("solves").unwrap().as_u64().unwrap() >= 1);
    let phases = profile.get("phases").unwrap();
    assert!(phases.get("eval_ns").unwrap().as_u64().unwrap() > 0);
    let rules = profile.get("rules").unwrap();
    assert!(
        rules.get("New").is_some(),
        "profiled solve must attribute time to the New rule: {}",
        profile.to_line()
    );
    assert!(profile.get("memory_bytes").unwrap().as_u64().unwrap() > 0);
    let folded = profile.get("folded").unwrap().as_str().unwrap();
    assert!(
        folded.lines().any(|l| l.starts_with("solver;eval;")),
        "folded stacks must include eval frames:\n{folded}"
    );
    server.shutdown();
    server.join();

    // With profiling off the endpoint still answers, reports itself
    // disabled, and the analysis answers are bit-identical.
    let server = test_server(|c| c.profile = false);
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::BOX).unwrap();
    let reply = client
        .request(&points_to_req(&digest, "2-object+H", "Main.main", "r1"))
        .unwrap();
    assert_eq!(str_arr(&reply, "heaps"), heaps, "profiling changed answers");
    let profile = client
        .request(&Json::obj([("op", Json::str("profile"))]))
        .unwrap();
    assert_eq!(profile.get("enabled").unwrap().as_bool(), Some(false));
    assert_eq!(profile.get("solves").unwrap().as_u64(), Some(0));
    server.shutdown();
    server.join();
}

/// `trace {exemplars: true}` returns the slowest retained requests per
/// endpoint, each with its span subtree reconstructed from the ring —
/// even when `limit` truncates the record list itself to nothing.
#[test]
fn trace_exemplars_attach_span_subtrees() {
    let _gate = trace_gate();
    ctxform_obs::enable_tracing(65_536);
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::BOX).unwrap();
    client
        .request_raw(&format!(
            "{{\"op\": \"points_to\", \"program\": \"{digest}\", \
             \"abstraction\": \"tstring\", \"sensitivity\": \"2-object+H\", \
             \"method\": \"Main.main\", \"var\": \"r1\", \"trace\": \"tail-probe\"}}\n"
        ))
        .unwrap();

    let reply = client
        .request(&Json::obj([
            ("op", Json::str("trace")),
            ("limit", Json::int(0)),
            ("exemplars", Json::Bool(true)),
        ]))
        .unwrap();
    ctxform_obs::disable_tracing();
    ctxform_obs::clear_trace();
    server.shutdown();
    server.join();

    assert!(
        reply.get("records").unwrap().as_arr().unwrap().is_empty(),
        "limit 0 must empty the record list"
    );
    let exemplars = reply.get("exemplars").unwrap().as_arr().unwrap();
    let probe = exemplars
        .iter()
        .find(|e| e.get("trace").and_then(Json::as_str) == Some("tail-probe"))
        .expect("the traced points_to request must rank among the exemplars");
    assert_eq!(probe.get("endpoint").unwrap().as_str(), Some("points_to"));
    assert!(probe.get("latency_us").unwrap().as_u64().is_some());
    let spans = probe.get("spans").unwrap().as_arr().unwrap();
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("server.request")),
        "exemplar subtree must keep its root span despite limit 0"
    );
    assert!(
        spans.len() >= 2,
        "subtree must include phase children, got {} spans",
        spans.len()
    );
}

/// A deadline bust arms the flight recorder: the trace ring and shard
/// queue depths land in the configured file for the post-mortem.
#[test]
fn deadline_bust_dumps_a_flight_record() {
    let path = std::env::temp_dir().join(format!(
        "ctxform-flight-service-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let server = test_server(|c| {
        c.deadline = Duration::from_millis(80);
        c.flight_path = Some(path.clone());
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client
        .request_raw("{\"op\": \"sleep\", \"ms\": 300}\n")
        .unwrap();
    assert_eq!(
        reply.get("error").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    server.shutdown();
    server.join();

    let text = std::fs::read_to_string(&path).expect("flight record file");
    let doc = Json::parse(&text).expect("flight record is valid JSON");
    assert_eq!(
        doc.get("schema").unwrap().as_str(),
        Some("ctxform-flight/1")
    );
    assert_eq!(
        doc.get("reason").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    assert!(doc.get("queues").unwrap().as_arr().is_some());
    assert!(doc.get("trace").is_some());
    let _ = std::fs::remove_file(&path);
}
