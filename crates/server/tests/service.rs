//! End-to-end tests of the query service over real TCP connections on
//! ephemeral ports: answer parity with direct `analyze` calls, cache
//! behaviour, malformed-input and overload replies, per-request
//! deadlines, loadgen under concurrency, and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::{compile, corpus};
use ctxform_server::client::{loadgen, Client, LoadGenConfig};
use ctxform_server::json::Json;
use ctxform_server::server::{start, ServerConfig, ServerHandle};

fn test_server(configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig {
        port: 0,
        threads: 4,
        queue_depth: 16,
        cache_bytes: 64 << 20,
        deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    configure(&mut config);
    start(config).expect("bind ephemeral port")
}

fn points_to_req(digest: &str, label: &str, method: &str, var: &str) -> Json {
    Json::obj([
        ("op", Json::str("points_to")),
        ("program", Json::str(digest)),
        ("abstraction", Json::str("tstring")),
        ("sensitivity", Json::str(label)),
        ("method", Json::str(method)),
        ("var", Json::str(var)),
    ])
}

fn str_arr(reply: &Json, key: &str) -> Vec<String> {
    reply
        .get(key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("missing `{key}` in {}", reply.to_line()))
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect()
}

/// Every query endpoint must answer exactly what a direct `analyze` call
/// answers, for every corpus program and every variable.
#[test]
fn server_answers_equal_direct_analyze() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let label = "2-object+H";
    let config = AnalysisConfig::transformer_strings(label.parse().unwrap());

    for (name, source) in corpus::all() {
        let module = compile(source).unwrap();
        let direct = analyze(&module.program, &config);
        let program = &module.program;
        let digest = client.load_source(source).unwrap();

        // points_to: every variable.
        for v in 0..program.var_count() {
            let var = ctxform_ir::Var::from_index(v);
            let method = &program.method_names[program.var_method[v].index()];
            let reply = client
                .request(&points_to_req(
                    &digest,
                    label,
                    method,
                    &program.var_names[v],
                ))
                .unwrap();
            let got = str_arr(&reply, "heaps");
            let want: Vec<String> = direct
                .ci
                .points_to(var)
                .iter()
                .map(|h| program.heap_names[h.index()].clone())
                .collect();
            assert_eq!(got, want, "{name}: points_to({})", program.var_names[v]);
        }

        // may_alias: spot-check the first few variable pairs.
        for a in 0..program.var_count().min(4) {
            for b in 0..program.var_count().min(4) {
                let (va, vb) = (
                    ctxform_ir::Var::from_index(a),
                    ctxform_ir::Var::from_index(b),
                );
                let reply = client
                    .request(&Json::obj([
                        ("op", Json::str("may_alias")),
                        ("program", Json::str(digest.clone())),
                        ("abstraction", Json::str("tstring")),
                        ("sensitivity", Json::str(label)),
                        (
                            "method_a",
                            Json::str(&*program.method_names[program.var_method[a].index()]),
                        ),
                        ("var_a", Json::str(&*program.var_names[a])),
                        (
                            "method_b",
                            Json::str(&*program.method_names[program.var_method[b].index()]),
                        ),
                        ("var_b", Json::str(&*program.var_names[b])),
                    ]))
                    .unwrap();
                assert_eq!(
                    reply.get("may_alias").unwrap().as_bool(),
                    Some(direct.ci.may_alias(va, vb)),
                    "{name}: may_alias({a}, {b})"
                );
            }
        }

        // call_edges: the full resolved call graph.
        let reply = client
            .request(&Json::obj([
                ("op", Json::str("call_edges")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(label)),
            ]))
            .unwrap();
        let mut want: Vec<(String, String)> = direct
            .ci
            .call
            .iter()
            .map(|&(i, q)| {
                (
                    program.inv_names[i.index()].clone(),
                    program.method_names[q.index()].clone(),
                )
            })
            .collect();
        want.sort();
        let got: Vec<(String, String)> = reply
            .get("edges")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| {
                let pair = e.as_arr().unwrap();
                (
                    pair[0].as_str().unwrap().to_owned(),
                    pair[1].as_str().unwrap().to_owned(),
                )
            })
            .collect();
        assert_eq!(got, want, "{name}: call_edges");

        // reachable: the method set.
        let reply = client
            .request(&Json::obj([
                ("op", Json::str("reachable")),
                ("program", Json::str(digest.clone())),
                ("abstraction", Json::str("tstring")),
                ("sensitivity", Json::str(label)),
            ]))
            .unwrap();
        let mut want: Vec<String> = direct
            .ci
            .reach
            .iter()
            .map(|m| program.method_names[m.index()].clone())
            .collect();
        want.sort();
        assert_eq!(str_arr(&reply, "methods"), want, "{name}: reachable");
    }

    server.shutdown();
    server.join();
}

/// The demand-driven path and a fact-file load agree with the exhaustive
/// context-insensitive answer.
#[test]
fn demand_and_fact_file_paths_agree() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let module = compile(corpus::BOX).unwrap();
    let direct = analyze(&module.program, &AnalysisConfig::insensitive());
    let program = &module.program;

    // The same program through the fact-file path lands on the same digest.
    let digest = client.load_source(corpus::BOX).unwrap();
    let facts = ctxform_ir::text::emit(program);
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("load_facts")),
            ("facts", Json::str(facts)),
        ]))
        .unwrap();
    assert_eq!(reply.get("program").unwrap().as_str(), Some(&*digest));

    for v in 0..program.var_count() {
        let var = ctxform_ir::Var::from_index(v);
        let method = &program.method_names[program.var_method[v].index()];
        let reply = client
            .request(&Json::obj([
                ("op", Json::str("points_to")),
                ("program", Json::str(digest.clone())),
                ("method", Json::str(&**method)),
                ("var", Json::str(&*program.var_names[v])),
                ("demand", Json::Bool(true)),
            ]))
            .unwrap();
        assert_eq!(reply.get("demand").unwrap().as_bool(), Some(true));
        let want: Vec<String> = direct
            .ci
            .points_to(var)
            .iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        assert_eq!(
            str_arr(&reply, "heaps"),
            want,
            "demand {}",
            program.var_names[v]
        );
    }

    server.shutdown();
    server.join();
}

/// A repeated query is answered from cache: `cached` flips to true, the
/// hit counter increments, and no second solve happens.
/// The `(method, var)` names of the program's first variable — a query
/// target that exists in every corpus program.
fn first_var(program: &ctxform_ir::Program) -> (String, String) {
    (
        program.method_names[program.var_method[0].index()].clone(),
        program.var_names[0].clone(),
    )
}

#[test]
fn repeated_query_hits_the_cache() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::LIST).unwrap();
    let (method, var) = first_var(&compile(corpus::LIST).unwrap().program);
    let analyze_req = Json::obj([
        ("op", Json::str("analyze")),
        ("program", Json::str(digest.clone())),
        ("abstraction", Json::str("tstring")),
        ("sensitivity", Json::str("2-object+H")),
    ]);
    let first = client.request(&analyze_req).unwrap();
    assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
    let second = client.request(&analyze_req).unwrap();
    assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
    // Identical counts from the cached database.
    assert_eq!(
        first.get("total").unwrap().as_u64(),
        second.get("total").unwrap().as_u64()
    );

    // A point query on the same (program, config) also hits the cache.
    let reply = client
        .request(&points_to_req(&digest, "2-object+H", &method, &var))
        .unwrap();
    assert_eq!(reply.get("cached").unwrap().as_bool(), Some(true));

    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1), "one solve");
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 2);
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));

    server.shutdown();
    server.join();
}

/// Malformed and invalid requests get typed error replies, not hangups.
#[test]
fn malformed_and_invalid_requests_get_error_replies() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let digest = client.load_source(corpus::BOX).unwrap();

    let cases: Vec<(String, &str)> = vec![
        ("this is not json\n".into(), "bad_request"),
        ("[1, 2, 3]\n".into(), "bad_request"),
        ("{\"op\": \"warp\"}\n".into(), "bad_request"),
        (
            "{\"op\": \"load_source\", \"source\": \"class { nope\"}\n".into(),
            "compile_error",
        ),
        (
            "{\"op\": \"load_facts\", \"facts\": \"frobnicate 1\"}\n".into(),
            "fact_error",
        ),
        (
            "{\"op\": \"analyze\", \"program\": \"00000000deadbeef\"}\n".into(),
            "unknown_program",
        ),
        (
            format!(
                "{{\"op\": \"points_to\", \"program\": \"{digest}\", \"method\": \"No.such\", \"var\": \"x\"}}\n"
            ),
            "unknown_method",
        ),
        (
            format!(
                "{{\"op\": \"points_to\", \"program\": \"{digest}\", \"method\": \"Main.main\", \"var\": \"nope\"}}\n"
            ),
            "unknown_var",
        ),
    ];
    for (line, want_code) in cases {
        let reply = client.request_raw(&line).unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false), "{line}");
        assert_eq!(
            reply.get("error").unwrap().as_str(),
            Some(want_code),
            "{line}"
        );
    }

    // The connection is still usable after every error.
    let reply = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert!(reply.get("endpoints").is_some());

    server.shutdown();
    server.join();
}

/// With one worker and a queue depth of one, a slow request plus a queued
/// connection forces the next arrival to be rejected with `overloaded`.
#[test]
fn overload_is_rejected_explicitly() {
    let server = test_server(|c| {
        c.threads = 1;
        c.queue_depth = 1;
    });
    let addr = server.addr();

    // Occupy the single worker.
    let busy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(&Json::obj([
                ("op", Json::str("sleep")),
                ("ms", Json::int(800)),
            ]))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // Fill the queue with an idle connection.
    let _queued = Client::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Subsequent arrivals must be turned away with a reply, not left
    // hanging. Accept-loop scheduling makes exactly which arrival is
    // rejected timing-dependent, so probe a few.
    let mut saw_overloaded = false;
    for _ in 0..5 {
        let mut probe = Client::connect(addr).unwrap();
        if let Ok(reply) = probe.read_reply() {
            assert_eq!(reply.get("error").unwrap().as_str(), Some("overloaded"));
            saw_overloaded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(saw_overloaded, "no arrival was rejected as overloaded");

    // The slow request still completes: overload rejection did not break
    // in-flight work.
    let reply = busy.join().unwrap();
    assert_eq!(reply.get("slept_ms").unwrap().as_u64(), Some(800));

    server.shutdown();
    server.join();
}

/// Work finishing past the configured deadline is answered with
/// `deadline_exceeded`.
#[test]
fn deadline_is_enforced() {
    let server = test_server(|c| c.deadline = Duration::from_millis(100));
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client
        .request_raw("{\"op\": \"sleep\", \"ms\": 600}\n")
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(
        reply.get("error").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    // A fast request on the same connection still succeeds.
    let reply = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert!(reply.get("uptime_ms").is_some());
    server.shutdown();
    server.join();
}

/// Loadgen with 8 concurrent connections completes with zero protocol
/// errors, and shutdown drains in-flight requests before the daemon exits.
#[test]
fn loadgen_runs_clean_and_shutdown_drains() {
    let server = test_server(|c| c.threads = 4);
    let addr = server.addr();
    let report = loadgen(
        addr,
        &LoadGenConfig {
            connections: 8,
            duration: Duration::from_millis(1200),
            sensitivity: "2-object+H".into(),
        },
    )
    .expect("loadgen setup");
    assert_eq!(report.errors, 0, "protocol errors under concurrency");
    assert!(
        report.requests > 8,
        "only {} requests completed",
        report.requests
    );
    assert!(report.latency_ms.3 >= report.latency_ms.0);

    // Graceful shutdown while a slow request is in flight: the sleeper
    // must still get its reply (drain), and join must return.
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.request_raw("{\"op\": \"sleep\", \"ms\": 400}\n")
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).unwrap();
    let reply = client
        .request(&Json::obj([("op", Json::str("shutdown"))]))
        .unwrap();
    assert_eq!(reply.get("draining").unwrap().as_bool(), Some(true));
    let slept = sleeper.join().unwrap().expect("in-flight request drained");
    assert_eq!(slept.get("ok").unwrap().as_bool(), Some(true));

    let report = server.join();
    assert!(report.contains("served"), "shutdown report: {report}");

    // The daemon is really gone: new connections fail or get no service.
    std::thread::sleep(Duration::from_millis(100));
    let alive = Client::connect(addr)
        .ok()
        .map(|mut c| c.request(&Json::obj([("op", Json::str("stats"))])).is_ok())
        .unwrap_or(false);
    assert!(!alive, "server still answering after join");
}

/// The `metrics` endpoint returns a parseable Prometheus text exposition
/// covering the serving layer, the database cache, and the solver's
/// per-rule counters.
#[test]
fn metrics_endpoint_serves_valid_prometheus_exposition() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    // One fresh solve so cache counters move and the solver registry has
    // per-rule series to render.
    let digest = client.load_source(corpus::BOX).unwrap();
    client
        .request(&Json::obj([
            ("op", Json::str("analyze")),
            ("program", Json::str(digest.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("2-object+H")),
        ]))
        .unwrap();

    let reply = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    assert_eq!(
        reply.get("content_type").unwrap().as_str(),
        Some("text/plain; version=0.0.4")
    );
    let text = reply.get("exposition").unwrap().as_str().unwrap();

    // Strict scrape: every line is a comment or `name{labels} value` with
    // a float-parseable value, and every sample's metric family was
    // declared by a preceding # TYPE line.
    let mut declared = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a metric name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad kind in {line:?}"
            );
            declared.insert(name.to_owned());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let name = series.split('{').next().unwrap();
        let family = name
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            declared.contains(name) || declared.contains(family),
            "undeclared family for sample {line:?}"
        );
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
    }

    // Endpoint latencies.
    assert!(text.contains("# TYPE ctxform_request_duration_seconds histogram"));
    assert!(text
        .contains("ctxform_request_duration_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 1"));
    assert!(text.contains("ctxform_requests_total{endpoint=\"analyze\"} 1"));
    // Database cache counters.
    assert!(text.contains("ctxform_db_cache_hits_total "));
    assert!(text.contains("ctxform_db_cache_misses_total 1"));
    assert!(text.contains("ctxform_db_cache_evictions_total 0"));
    // Solver rule counters fed by the fresh solve.
    assert!(text.contains("ctxform_solver_solves_total 1"));
    assert!(
        text.contains("ctxform_solver_rule_fired_total{rule=\"New\"}"),
        "missing per-rule counter in:\n{text}"
    );
    assert!(text.contains("ctxform_solver_rule_derived_total{rule=\"Reach\"}"));
    assert!(text.contains("ctxform_solver_solve_seconds_count 1"));

    server.shutdown();
    server.join();
}

/// Client-supplied trace ids are echoed in replies, and the `trace`
/// endpoint returns the in-process trace ring as structured JSON.
#[test]
fn trace_ids_echo_and_trace_endpoint_round_trips() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();

    // Without a trace id the reply has no trace field.
    let reply = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    assert!(reply.get("trace").is_none());

    // With one, it is echoed verbatim — on successes and on errors.
    let reply = client
        .request_raw("{\"op\": \"stats\", \"trace\": \"req-007\"}\n")
        .unwrap();
    assert_eq!(reply.get("trace").unwrap().as_str(), Some("req-007"));
    let reply = client
        .request_raw("{\"op\": \"warp\", \"trace\": \"req-008\"}\n")
        .unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(reply.get("trace").unwrap().as_str(), Some("req-008"));

    // The trace endpoint reports disabled + empty until tracing is on.
    let reply = client
        .request(&Json::obj([("op", Json::str("trace"))]))
        .unwrap();
    assert_eq!(reply.get("enabled").unwrap().as_bool(), Some(false));

    // Server workers share this process's trace ring, so enabling tracing
    // here makes their request spans visible to the trace endpoint.
    ctxform_obs::enable_tracing(4096);
    client
        .request_raw("{\"op\": \"stats\", \"trace\": \"req-traced\"}\n")
        .unwrap();
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("trace")),
            ("limit", Json::int(256)),
        ]))
        .unwrap();
    ctxform_obs::disable_tracing();
    ctxform_obs::clear_trace();
    assert_eq!(reply.get("enabled").unwrap().as_bool(), Some(true));
    assert!(reply.get("dropped").unwrap().as_u64().is_some());
    let records = reply.get("records").unwrap().as_arr().unwrap();
    let traced = records.iter().find(|r| {
        r.get("name").and_then(Json::as_str) == Some("server.request")
            && r.get("fields")
                .and_then(|f| f.get("trace"))
                .and_then(Json::as_str)
                == Some("req-traced")
    });
    let span = traced.expect("request span with the client's trace id in the ring");
    assert_eq!(span.get("kind").unwrap().as_str(), Some("span"));
    assert_eq!(
        span.get("fields")
            .unwrap()
            .get("endpoint")
            .unwrap()
            .as_str(),
        Some("stats")
    );
    assert_eq!(
        span.get("fields").unwrap().get("ok").unwrap().as_bool(),
        Some(true)
    );

    server.shutdown();
    server.join();
}

/// Requests slower than the configured threshold land in the structured
/// slow-query log with their endpoint and trace id.
#[test]
fn slow_queries_are_logged_with_trace_ids() {
    let captured = ctxform_obs::logger::capture();
    let server = test_server(|c| c.slow_query_ms = 10);
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .request_raw("{\"op\": \"sleep\", \"ms\": 50, \"trace\": \"slowpoke\"}\n")
        .unwrap();
    client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    server.shutdown();
    server.join();
    ctxform_obs::logger::log_to_stderr();

    let lines = captured.lock().unwrap();
    let slow: Vec<&String> = lines.iter().filter(|l| l.contains("slow query")).collect();
    assert!(
        slow.iter()
            .any(|l| l.contains("endpoint=sleep") && l.contains("trace=slowpoke")),
        "no slow-query line for the sleeper in {lines:?}"
    );
    assert!(
        !slow.iter().any(|l| l.contains("endpoint=stats")),
        "fast request must not hit the slow-query log"
    );
}

/// Three revisions of one program for the `update` endpoint: each `V<n+1>`
/// appends a driver class to `V<n>`, so V0→V1→V2 are purely-additive edits
/// while any reverse step is non-monotone.
const UPD_V0: &str = "class Box { Object item;
        void put(Object o) { this.item = o; }
        Object get() { Object r = this.item; return r; }
    }
    class Main {
        public static void main(String[] args) {
            Box b = new Box();
            Object o = new Object();
            b.put(o);
            Object r = b.get();
        }
    }";

fn upd_v1() -> String {
    format!(
        "{UPD_V0}
    class EditA {{
        public static void main(String[] args) {{
            Box b2 = new Box();
            Object p = new Object();
            b2.put(p);
            Object q = b2.get();
        }}
    }}"
    )
}

fn upd_v2() -> String {
    format!(
        "{}
    class EditB {{
        public static void main(String[] args) {{
            Box b3 = new Box();
            b3.put(new Object());
            Object s = b3.get();
        }}
    }}",
        upd_v1()
    )
}

fn update_req(base: &str, source: &str) -> Json {
    Json::obj([
        ("op", Json::str("update")),
        ("base", Json::str(base)),
        ("source", Json::str(source)),
        ("abstraction", Json::str("tstring")),
        ("sensitivity", Json::str("2-object+H")),
    ])
}

/// The `update` endpoint: an edit chain reuses cached databases
/// incrementally, non-monotone edits fall back, the edited program's
/// solution lands in the result cache, and the new counters are scraped
/// by both `stats` and `metrics`.
#[test]
fn update_endpoint_reuses_cached_databases() {
    let server = test_server(|_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let d0 = client.load_source(UPD_V0).unwrap();

    // First update: nothing extendable is resident yet, so this is a
    // recorded fallback that *seeds* the database chain.
    let r1 = client.request(&update_req(&d0, &upd_v1())).unwrap();
    assert_eq!(r1.get("incremental").unwrap().as_bool(), Some(false));
    assert_eq!(r1.get("base_cached").unwrap().as_bool(), Some(false));
    assert!(r1
        .get("reason")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("no cached database"));
    let d1 = r1.get("program").unwrap().as_str().unwrap().to_owned();

    // Second update: the V1 database is resident and the edit is purely
    // additive, so the solve resumes incrementally.
    let r2 = client.request(&update_req(&d1, &upd_v2())).unwrap();
    assert_eq!(r2.get("incremental").unwrap().as_bool(), Some(true));
    assert_eq!(r2.get("base_cached").unwrap().as_bool(), Some(true));
    assert!(r2.get("reason").is_none());
    let d2 = r2.get("program").unwrap().as_str().unwrap().to_owned();

    // Bit-identical to a from-scratch solve of the edited program: the
    // canonical fact digest matches a direct local solve.
    let config = AnalysisConfig::transformer_strings("2-object+H".parse().unwrap());
    let scratch = ctxform::AnalysisDb::solve(compile(&upd_v2()).unwrap().program, &config);
    assert_eq!(
        r2.get("fact_digest").unwrap().as_str().unwrap(),
        format!("{:016x}", scratch.fact_digest()),
        "incremental update diverged from a from-scratch solve"
    );

    // The update also populated the ordinary result cache: an analyze of
    // the edited program is answered without another solve.
    let reply = client
        .request(&Json::obj([
            ("op", Json::str("analyze")),
            ("program", Json::str(d2.clone())),
            ("abstraction", Json::str("tstring")),
            ("sensitivity", Json::str("2-object+H")),
        ]))
        .unwrap();
    assert_eq!(reply.get("cached").unwrap().as_bool(), Some(true));

    // A reverse edit removes entities: resident database, but the diff is
    // non-monotone, so the server falls back (and says why).
    let r3 = client.request(&update_req(&d2, UPD_V0)).unwrap();
    assert_eq!(r3.get("incremental").unwrap().as_bool(), Some(false));
    assert_eq!(r3.get("base_cached").unwrap().as_bool(), Some(true));
    assert!(!r3.get("reason").unwrap().as_str().unwrap().is_empty());

    // Both counters are visible to stats and to a Prometheus scrape.
    let stats = client
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("incremental_reuse").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("incremental_fallback").unwrap().as_u64(), Some(2));
    let metrics = client
        .request(&Json::obj([("op", Json::str("metrics"))]))
        .unwrap();
    let text = metrics.get("exposition").unwrap().as_str().unwrap();
    assert!(text.contains("ctxform_db_incremental_reuse_total 1"));
    assert!(text.contains("ctxform_db_incremental_fallback_total 2"));

    // Unknown base digests stay typed errors.
    let reply = client
        .request_raw(&format!(
            "{}\n",
            update_req("00000000deadbeef", UPD_V0).to_line()
        ))
        .unwrap();
    assert_eq!(
        reply.get("error").unwrap().as_str(),
        Some("unknown_program")
    );

    server.shutdown();
    server.join();
}

/// Concurrent clients issuing the same cold query coalesce onto one solve.
#[test]
fn concurrent_cold_queries_solve_once() {
    let server = test_server(|_| {});
    let addr = server.addr();
    let mut setup = Client::connect(addr).unwrap();
    let digest = Arc::new(setup.load_source(corpus::DISPATCH).unwrap());
    let (method, var) = first_var(&compile(corpus::DISPATCH).unwrap().program);
    let target = Arc::new((method, var));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let digest = digest.clone();
        let target = target.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .request(&points_to_req(&digest, "2-object+H", &target.0, &target.1))
                .unwrap()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = setup
        .request(&Json::obj([("op", Json::str("stats"))]))
        .unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1), "one solve");
    server.shutdown();
    server.join();
}
