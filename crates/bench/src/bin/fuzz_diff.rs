//! Differential fuzzer for the solver engines.
//!
//! ```text
//! cargo run --release -p ctxform-bench --bin fuzz_diff -- \
//!     [--iters N] [--seed S] [--repro-dir PATH]
//! ```
//!
//! Each iteration draws a seeded `ctxform_synth` program and sweeps the
//! shared differential matrix ([`ctxform_testutil::incremental_configs`]:
//! {cstring, tstring} × {1-call, 1-object}) × {1, 4} threads ×
//! {rounds, summary-scc}, holding every cell to the serial round-based
//! solve of the same program:
//!
//! 1. **Digest parity** — `AnalysisDb::fact_digest` (rendered, sorted,
//!    context-sensitive facts) must be bit-identical.
//! 2. **Pts-set equality** — the context-insensitive projections must
//!    match set-for-set.
//! 3. **Extend-after-fuzz parity** — one seeded additive edit is applied
//!    through `AnalysisDb::extend` in every cell and the digest is held
//!    to the serial from-scratch solve of the edited revision.
//!
//! On the first violated property the harness writes a reproducer to
//! `ctxform-fuzz-repro/1` — a JSON object with the seed, iteration,
//! config, thread count, solve mode, both digests, and the generator
//! inputs needed to replay (`fuzz_diff --iters 1 --seed <seed>`) — and
//! exits nonzero. CI uploads that file as an artifact on failure.

use ctxform::{AnalysisConfig, AnalysisDb, SolveMode};
use ctxform_minijava::compile;
use ctxform_obs::logger;
use ctxform_server::json::{hex16, Json};
use ctxform_synth::{edit_script, random_program};
use ctxform_testutil::{incremental_configs, PARITY_THREADS};

const MODES: [SolveMode; 2] = [SolveMode::Rounds, SolveMode::SummaryScc];

/// One differential violation, with everything needed to replay it.
struct Violation {
    seed: u64,
    iter: usize,
    config: AnalysisConfig,
    threads: usize,
    mode: SolveMode,
    property: &'static str,
    expected: u64,
    actual: u64,
}

impl Violation {
    fn to_json(&self, iters: usize) -> Json {
        Json::obj([
            ("schema", Json::str("ctxform-fuzz-repro/1")),
            ("seed", Json::uint(self.seed)),
            ("iter", Json::int(self.iter)),
            ("iters", Json::int(iters)),
            ("config", Json::Str(self.config.to_string())),
            ("threads", Json::int(self.threads)),
            ("solve_mode", Json::Str(self.mode.to_string())),
            ("property", Json::str(self.property)),
            ("expected_digest", Json::Str(hex16(self.expected))),
            ("actual_digest", Json::Str(hex16(self.actual))),
            (
                "replay",
                Json::Str(format!(
                    "cargo run --release -p ctxform-bench --bin fuzz_diff -- \
                     --iters 1 --seed {}",
                    self.seed
                )),
            ),
        ])
    }
}

/// Runs every differential property for one seed; returns the first
/// violation, if any.
fn check_seed(seed: u64, iter: usize) -> Option<Violation> {
    let source = random_program(seed, 1);
    // One edited revision for the extend-after-fuzz property (revision 0
    // is the base itself).
    let revisions = edit_script(&source, seed, 1);
    let programs: Vec<_> = revisions
        .iter()
        .map(|src| {
            compile(src)
                .unwrap_or_else(|e| panic!("seed {seed}: revision fails to compile: {e}"))
                .program
        })
        .collect();

    for base in incremental_configs() {
        // The serial round-based solve is the oracle for every cell;
        // digests are independent of thread count and engine.
        let oracle = AnalysisDb::solve(programs[0].clone(), &base.with_threads(1));
        let oracle_edit_digest =
            AnalysisDb::solve(programs[1].clone(), &base.with_threads(1)).fact_digest();
        for mode in MODES {
            for &threads in &PARITY_THREADS {
                let cfg = base.with_solve_mode(mode).with_threads(threads);
                let mut db = AnalysisDb::solve(programs[0].clone(), &cfg);
                if db.fact_digest() != oracle.fact_digest() {
                    return Some(Violation {
                        seed,
                        iter,
                        config: base,
                        threads,
                        mode,
                        property: "fact_digest parity",
                        expected: oracle.fact_digest(),
                        actual: db.fact_digest(),
                    });
                }
                if db.result().ci != oracle.result().ci {
                    return Some(Violation {
                        seed,
                        iter,
                        config: base,
                        threads,
                        mode,
                        property: "ci pts-set equality",
                        expected: oracle.fact_digest(),
                        actual: db.fact_digest(),
                    });
                }
                let outcome = db.extend(programs[1].clone());
                if !outcome.is_incremental() {
                    panic!(
                        "seed {seed} {base} threads={threads} mode={mode}: \
                         additive fuzz edit did not extend incrementally: {outcome:?}"
                    );
                }
                if db.fact_digest() != oracle_edit_digest {
                    return Some(Violation {
                        seed,
                        iter,
                        config: base,
                        threads,
                        mode,
                        property: "extend-after-fuzz parity",
                        expected: oracle_edit_digest,
                        actual: db.fact_digest(),
                    });
                }
            }
        }
    }
    None
}

fn main() {
    let mut iters = 25usize;
    let mut seed0 = 0u64;
    let mut repro_dir = "ctxform-fuzz-repro".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--iters needs a positive integer");
            }
            "--seed" => {
                seed0 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an unsigned integer");
            }
            "--repro-dir" => repro_dir = args.next().expect("--repro-dir needs a path"),
            "--help" | "-h" => {
                eprintln!("usage: fuzz_diff [--iters N] [--seed S] [--repro-dir PATH]");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    for iter in 0..iters {
        let seed = seed0.wrapping_add(iter as u64);
        if let Some(v) = check_seed(seed, iter) {
            let path = format!("{repro_dir}/1");
            std::fs::create_dir_all(&repro_dir)
                .unwrap_or_else(|e| panic!("cannot create {repro_dir}: {e}"));
            std::fs::write(&path, v.to_json(iters).to_pretty())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            logger::error(
                "fuzz_diff",
                format!(
                    "seed {seed} ({}, threads={}, mode={}) violated {}: \
                     expected {} got {}; reproducer written to {path}",
                    v.config,
                    v.threads,
                    v.mode,
                    v.property,
                    hex16(v.expected),
                    hex16(v.actual)
                ),
            );
            std::process::exit(1);
        }
        if (iter + 1) % 5 == 0 || iter + 1 == iters {
            logger::info("fuzz_diff", format!("{}/{iters} seeds clean", iter + 1));
        }
    }
    logger::info(
        "fuzz_diff",
        format!(
            "all {iters} seeds clean across {} configs x {:?} threads x {:?}",
            incremental_configs().len(),
            PARITY_THREADS,
            MODES.map(|m| m.to_string()),
        ),
    );
}
