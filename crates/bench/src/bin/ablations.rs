//! One-shot ablation report: §7 join strategies and §8 subsumption.
use ctxform::{analyze, AnalysisConfig};
use ctxform_bench::compile_benchmark;
use std::time::Instant;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("== section 7 ablation: join strategies (luindex, 2-object+H, scale {scale}) ==");
    let program = compile_benchmark("luindex", scale);
    let s = "2-object+H".parse().unwrap();
    for (name, cfg) in [
        (
            "tstring/specialized",
            AnalysisConfig::transformer_strings(s),
        ),
        (
            "tstring/naive      ",
            AnalysisConfig::transformer_strings(s).with_naive_joins(),
        ),
        ("cstring/specialized", AnalysisConfig::context_strings(s)),
        (
            "cstring/naive      ",
            AnalysisConfig::context_strings(s).with_naive_joins(),
        ),
    ] {
        let t0 = Instant::now();
        let r = analyze(&program, &cfg);
        println!(
            "  {name}: {:?} ({} probes, {} compose calls, {} facts)",
            t0.elapsed(),
            r.stats.probes,
            r.stats.compose_calls,
            r.stats.total()
        );
    }
    println!("\n== section 8 ablation: subsumption (bloat, 1-call+H, scale {scale}) ==");
    let program = compile_benchmark("bloat", scale);
    let s = "1-call+H".parse().unwrap();
    for (name, cfg) in [
        (
            "tstring/plain      ",
            AnalysisConfig::transformer_strings(s),
        ),
        (
            "tstring/subsumption",
            AnalysisConfig::transformer_strings(s).with_subsumption(),
        ),
        ("cstring            ", AnalysisConfig::context_strings(s)),
    ] {
        let t0 = Instant::now();
        let r = analyze(&program, &cfg);
        println!(
            "  {name}: {:?} ({} pts facts, {} dropped, {} retired)",
            t0.elapsed(),
            r.stats.pts,
            r.stats.subsumed_dropped,
            r.stats.subsumed_retired
        );
    }
    println!("\n== transformer configuration histogram (bloat pts, 1-call+H) ==");
    let r = analyze(&program, &AnalysisConfig::transformer_strings(s));
    for (tag, n) in &r.stats.pts_configurations {
        let tag = if tag.is_empty() { "ε" } else { tag.as_str() };
        println!("  {tag:6} {n}");
    }
}
