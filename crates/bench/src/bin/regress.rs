//! Bench-regression harness: runs the Figure 6 matrix at a fixed scale and
//! writes a machine-readable `BENCH_<n>.json` trajectory point.
//!
//! ```text
//! cargo run --release -p ctxform-bench --bin regress -- \
//!     [--scale N] [--repeat N] [--threads N] [--bench NAME] [--out PATH] \
//!     [--trace-json PATH] [--profile-folded PATH]
//! ```
//!
//! `--profile-folded PATH` runs the `cstring`/`tstring` cells with solver
//! profiling enabled and writes the aggregated per-rule/per-phase wall
//! time as folded-stack text (one `frame;frame <ns>` line per stack),
//! ready for `flamegraph.pl` or `inferno-flamegraph`. Profiling never
//! changes answers — the digest assertions below hold either way.
//!
//! Each run records, per benchmark and per Figure 6 configuration, for both
//! abstractions plus a subsumption-enabled transformer-string cell
//! (`tstring_subs`, which exercises the solver's subsume-memo counters),
//! a frontier-parallel transformer-string cell (`tstring_par`, solved
//! with `--threads` workers — default 4 — whose CI digest is asserted
//! equal to the serial `tstring` cell before the file is written), a
//! bottom-up SCC summary cell (`tstring_scc`: the same matrix point
//! solved with `SolveMode::SummaryScc`, recording the condensation shape
//! and the summaries-synthesized/applied counters in an extra `scc`
//! object, after asserting its CI digest and cs-fact counts equal the
//! serial `tstring` cell — the engine's bit-parity acceptance oracle,
//! at bench scale), and an
//! incremental re-analysis cell (`tstring_incr`: a single additive
//! driver-class edit is applied to the benchmark source and the edited
//! program is solved twice — once by `AnalysisDb::extend` over the base
//! program's cached database and once from scratch — recording both times,
//! the speedup, and the derivation counts, after asserting the two fact
//! digests are bit-identical and the extension re-derived strictly fewer
//! facts), an incremental *deletion* cell (`tstring_incr_del`: a seeded
//! deleting edit removes one input tuple and the edited program is
//! solved by DRed retraction over the cached database versus from
//! scratch, recording both times, the speedup, and the
//! over-delete/re-derive counts, after asserting the outcome was
//! `Retracted` and the digests are bit-identical), and a demand-driven
//! query cell (`tstring_demand`: a cold
//! `pts(v0, ·)` query answered through the magic-sets demand engine is
//! timed against a full solve followed by a lookup, after asserting the
//! demanded answer is byte-identical and the gated solve derived no more
//! facts than the exhaustive one):
//! context-sensitive fact counts, solver wall time, the
//! probe/compose/memo counters from [`ctxform::SolverStats`], the interner
//! size, and an order-independent Fx digest of the context-insensitive
//! facts (so two runs can be compared for byte-identical CI results
//! without storing the facts themselves). With `--repeat N` (default 3)
//! each cell is solved `N` times and the fastest run is recorded —
//! min-of-N is the noise-robust estimator on a shared machine — after
//! asserting that every repeat produced the same CI digest and fact
//! counts.
//!
//! Without `--out`, the file is named `BENCH_<n>.json` where `n` is one
//! more than the largest existing trajectory point in the current
//! directory — so successive PRs append `BENCH_1.json`, `BENCH_2.json`, …
//! and any later run can diff against the checked-in history.

use std::time::{Duration, Instant};

use ctxform::{analyze, AnalysisConfig, AnalysisDb, AnalysisResult};
use ctxform_algebra::Sensitivity;
use ctxform_bench::benchmark_source;
use ctxform_hash::fx_hash_one;
use ctxform_minijava::compile;
use ctxform_obs::logger;
use ctxform_server::json::{hex16, Json};
use ctxform_synth::{append_edit, dacapo_like, retract_edit_script};

/// An order-independent digest of the CI projections: each fact set is
/// sorted and hashed as a sequence, then the five relation digests are
/// combined. Identical CI facts ⇒ identical digest, on every platform.
fn ci_digest(r: &AnalysisResult) -> u64 {
    let mut pts: Vec<_> = r.ci.pts.iter().copied().collect();
    pts.sort_unstable();
    let mut hpts: Vec<_> = r.ci.hpts.iter().copied().collect();
    hpts.sort_unstable();
    let mut call: Vec<_> = r.ci.call.iter().copied().collect();
    call.sort_unstable();
    let mut spts: Vec<_> = r.ci.spts.iter().copied().collect();
    spts.sort_unstable();
    let mut reach: Vec<_> = r.ci.reach.iter().copied().collect();
    reach.sort_unstable();
    fx_hash_one(&(pts, hpts, call, spts, reach))
}

/// Serializes one analysis run as a JSON object.
fn run_json(r: &AnalysisResult) -> Json {
    let s = &r.stats;
    Json::obj([
        ("pts", Json::int(s.pts)),
        ("hpts", Json::int(s.hpts)),
        ("hload", Json::int(s.hload)),
        ("call", Json::int(s.call)),
        ("spts", Json::int(s.spts)),
        ("reach", Json::int(s.reach)),
        ("total", Json::int(s.total())),
        ("time_ms", Json::ms(s.duration.as_secs_f64() * 1000.0)),
        ("events", Json::int(s.events)),
        ("probes", Json::uint(s.probes)),
        ("compose_calls", Json::uint(s.compose_calls)),
        ("compose_bottom", Json::uint(s.compose_bottom)),
        ("compose_memo_hits", Json::uint(s.compose_memo_hits)),
        ("compose_memo_misses", Json::uint(s.compose_memo_misses)),
        ("subsume_memo_hits", Json::uint(s.subsume_memo_hits)),
        ("subsume_memo_misses", Json::uint(s.subsume_memo_misses)),
        ("subsumed_dropped", Json::uint(s.subsumed_dropped)),
        ("subsumed_retired", Json::uint(s.subsumed_retired)),
        ("interned_contexts", Json::int(s.interned_contexts)),
        ("threads_used", Json::int(s.threads_used)),
        ("par_rounds", Json::int(s.par_rounds)),
        ("par_frontier_peak", Json::int(s.par_frontier_peak)),
        ("par_deferred", Json::uint(s.par_deferred)),
        // Per-Fig.-3-rule firing/derivation counts (zero rows omitted).
        // `fired` counts insertion attempts, which differ between the
        // serial and frontier-parallel engines (candidates are
        // pre-filtered emit-side); `derived` counts new facts and is
        // engine-independent.
        (
            "rules",
            Json::Obj(
                s.rule_fired
                    .iter()
                    .zip(s.rule_derived.iter())
                    .filter(|((_, fired), (_, derived))| *fired > 0 || *derived > 0)
                    .map(|((rule, fired), (_, derived))| {
                        (
                            rule.to_owned(),
                            Json::obj([
                                ("fired", Json::uint(fired)),
                                ("derived", Json::uint(derived)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "ci",
            Json::obj([
                ("pts", Json::int(r.ci.pts.len())),
                ("hpts", Json::int(r.ci.hpts.len())),
                ("call", Json::int(r.ci.call.len())),
                ("spts", Json::int(r.ci.spts.len())),
                ("reach", Json::int(r.ci.reach.len())),
            ]),
        ),
        ("ci_digest", Json::Str(hex16(ci_digest(r)))),
    ])
}

/// Solves `program` under `config` `repeat` times and returns the run
/// with the smallest solver wall time, panicking if any two repeats
/// disagree on the CI facts or context-sensitive fact counts (a
/// nondeterminism bug the harness must not average away).
fn best_of(
    program: &ctxform_ir::Program,
    config: &AnalysisConfig,
    repeat: usize,
) -> AnalysisResult {
    let mut best = analyze(program, config);
    let (digest, total) = (ci_digest(&best), best.stats.total());
    for _ in 1..repeat {
        let r = analyze(program, config);
        assert_eq!(
            ci_digest(&r),
            digest,
            "{config}: CI facts differ across repeats"
        );
        assert_eq!(
            r.stats.total(),
            total,
            "{config}: cs-fact counts differ across repeats"
        );
        if r.stats.duration < best.stats.duration {
            best = r;
        }
    }
    best
}

/// The incremental re-analysis cell: the edited program is solved by
/// extending the base program's database (`repeat` times over fresh
/// clones; min time kept) and from scratch (`repeat` times; min time
/// kept). Panics unless every extension is incremental, all repeats and
/// both paths agree on the fact digest, and the extension re-derived
/// strictly fewer facts than the from-scratch solve.
fn incr_cell(
    base: &ctxform_ir::Program,
    edited: &ctxform_ir::Program,
    config: &AnalysisConfig,
    repeat: usize,
) -> Json {
    let base_db = AnalysisDb::solve(base.clone(), config);
    let mut incr_time = Duration::MAX;
    let mut incr_db = None;
    for _ in 0..repeat {
        let mut db = base_db.clone();
        let next = edited.clone();
        let started = Instant::now();
        let outcome = db.extend(next);
        let elapsed = started.elapsed();
        assert!(
            outcome.is_incremental(),
            "{config}: appended driver class must extend incrementally, got {outcome:?}"
        );
        if let Some(prev) = &incr_db {
            let prev: &AnalysisDb = prev;
            assert_eq!(
                db.fact_digest(),
                prev.fact_digest(),
                "{config}: incremental repeats disagree on the fact digest"
            );
        }
        if elapsed < incr_time || incr_db.is_none() {
            incr_time = elapsed;
            incr_db = Some(db);
        }
    }
    let incr_db = incr_db.expect("repeat >= 1");
    let mut scratch_time = Duration::MAX;
    let mut scratch_db = None;
    for _ in 0..repeat {
        let next = edited.clone();
        let started = Instant::now();
        let db = AnalysisDb::solve(next, config);
        let elapsed = started.elapsed();
        if elapsed < scratch_time || scratch_db.is_none() {
            scratch_time = elapsed;
            scratch_db = Some(db);
        }
    }
    let scratch_db = scratch_db.expect("repeat >= 1");
    assert_eq!(
        incr_db.fact_digest(),
        scratch_db.fact_digest(),
        "{config}: incremental result is not bit-identical to the from-scratch solve"
    );
    let incr_derived = incr_db.result().stats.rule_derived.total();
    let scratch_derived = scratch_db.result().stats.rule_derived.total();
    assert!(
        incr_derived < scratch_derived,
        "{config}: extension re-derived {incr_derived} facts, not fewer than \
         the from-scratch {scratch_derived}"
    );
    let incr_ms = incr_time.as_secs_f64() * 1000.0;
    let scratch_ms = scratch_time.as_secs_f64() * 1000.0;
    Json::obj([
        ("time_ms", Json::ms(incr_ms)),
        ("scratch_ms", Json::ms(scratch_ms)),
        (
            "speedup",
            Json::ms(if incr_ms > 0.0 {
                scratch_ms / incr_ms
            } else {
                0.0
            }),
        ),
        ("derived_incremental", Json::uint(incr_derived)),
        ("derived_scratch", Json::uint(scratch_derived)),
        ("total", Json::int(incr_db.result().stats.total())),
        ("fact_digest", Json::Str(hex16(incr_db.fact_digest()))),
    ])
}

/// The incremental deletion cell: the deleted-edit program is solved by
/// DRed retraction over the base program's database (`repeat` times over
/// fresh clones; min time kept) and from scratch (`repeat` times; min
/// time kept). Panics unless every extension took the `Retracted` path,
/// all repeats and both paths agree on the fact digest, and the re-derive
/// pass restored no more facts than the over-delete pass removed.
fn incr_del_cell(
    base: &ctxform_ir::Program,
    deleted: &ctxform_ir::Program,
    config: &AnalysisConfig,
    repeat: usize,
) -> Json {
    let base_db = AnalysisDb::solve(base.clone(), config);
    let mut incr_time = Duration::MAX;
    let mut incr_db = None;
    for _ in 0..repeat {
        let mut db = base_db.clone();
        let next = deleted.clone();
        let started = Instant::now();
        let outcome = db.extend(next);
        let elapsed = started.elapsed();
        assert!(
            matches!(outcome, ctxform::ExtendOutcome::Retracted),
            "{config}: deleting edit must take the retraction path, got {outcome:?}"
        );
        if let Some(prev) = &incr_db {
            let prev: &AnalysisDb = prev;
            assert_eq!(
                db.fact_digest(),
                prev.fact_digest(),
                "{config}: retraction repeats disagree on the fact digest"
            );
        }
        if elapsed < incr_time || incr_db.is_none() {
            incr_time = elapsed;
            incr_db = Some(db);
        }
    }
    let incr_db = incr_db.expect("repeat >= 1");
    let mut scratch_time = Duration::MAX;
    let mut scratch_db = None;
    for _ in 0..repeat {
        let next = deleted.clone();
        let started = Instant::now();
        let db = AnalysisDb::solve(next, config);
        let elapsed = started.elapsed();
        if elapsed < scratch_time || scratch_db.is_none() {
            scratch_time = elapsed;
            scratch_db = Some(db);
        }
    }
    let scratch_db = scratch_db.expect("repeat >= 1");
    assert_eq!(
        incr_db.fact_digest(),
        scratch_db.fact_digest(),
        "{config}: DRed result is not bit-identical to the from-scratch solve"
    );
    let stats = &incr_db.result().stats;
    assert!(
        stats.rederived <= stats.overdeleted,
        "{config}: re-derived {} facts but only {} were over-deleted",
        stats.rederived,
        stats.overdeleted
    );
    let incr_ms = incr_time.as_secs_f64() * 1000.0;
    let scratch_ms = scratch_time.as_secs_f64() * 1000.0;
    Json::obj([
        ("time_ms", Json::ms(incr_ms)),
        ("scratch_ms", Json::ms(scratch_ms)),
        (
            "speedup",
            Json::ms(if incr_ms > 0.0 {
                scratch_ms / incr_ms
            } else {
                0.0
            }),
        ),
        ("overdeleted", Json::uint(stats.overdeleted)),
        ("rederived", Json::uint(stats.rederived)),
        (
            "derived_incremental",
            Json::uint(stats.rule_derived.total()),
        ),
        (
            "derived_scratch",
            Json::uint(scratch_db.result().stats.rule_derived.total()),
        ),
        ("total", Json::int(stats.total())),
        ("fact_digest", Json::Str(hex16(incr_db.fact_digest()))),
    ])
}

/// The demand-driven query cell: answers `pts(v0, ·)` cold through the
/// demand engine (`repeat` times over fresh engines — no slice reuse —
/// min time kept) and by a full solve followed by a lookup (`repeat`
/// times; min time kept). Panics unless the demanded answer is
/// byte-identical to the exhaustive one and the gated solve derived no
/// more facts than the exhaustive solve.
fn demand_cell(program: &ctxform_ir::Program, config: &AnalysisConfig, repeat: usize) -> Json {
    let var = ctxform_ir::Var::from_index(0);
    let mut query_time = Duration::MAX;
    let mut outcome = None;
    for _ in 0..repeat {
        let engine = ctxform_demand::DemandEngine::new(1);
        let started = Instant::now();
        let got = engine
            .query(0, program, config, &[var])
            .expect("paper configs are demand-supported");
        let elapsed = started.elapsed();
        if let Some(prev) = &outcome {
            let prev: &ctxform_demand::QueryOutcome = prev;
            assert_eq!(
                got.answers, prev.answers,
                "{config}: demand repeats disagree on the answer"
            );
        }
        if elapsed < query_time || outcome.is_none() {
            query_time = elapsed;
            outcome = Some(got);
        }
    }
    let outcome = outcome.expect("repeat >= 1");
    let mut solve_time = Duration::MAX;
    let mut exhaustive = None;
    for _ in 0..repeat {
        let started = Instant::now();
        let r = analyze(program, config);
        let _ = r.ci.points_to(var);
        let elapsed = started.elapsed();
        if elapsed < solve_time || exhaustive.is_none() {
            solve_time = elapsed;
            exhaustive = Some(r);
        }
    }
    let exhaustive = exhaustive.expect("repeat >= 1");
    assert_eq!(
        outcome.answers[0].1,
        exhaustive.ci.points_to(var),
        "{config}: demanded answer differs from the exhaustive one"
    );
    let exhaustive_facts = exhaustive.stats.total();
    assert!(
        outcome.solver_facts <= exhaustive_facts,
        "{config}: gated solve derived {} facts, more than the exhaustive {}",
        outcome.solver_facts,
        exhaustive_facts
    );
    let query_ms = query_time.as_secs_f64() * 1000.0;
    let solve_ms = solve_time.as_secs_f64() * 1000.0;
    Json::obj([
        ("time_ms", Json::ms(query_ms)),
        ("solve_lookup_ms", Json::ms(solve_ms)),
        (
            "speedup",
            Json::ms(if query_ms > 0.0 {
                solve_ms / query_ms
            } else {
                0.0
            }),
        ),
        ("slice_tuples", Json::int(outcome.slice_tuples)),
        ("slice_derivations", Json::int(outcome.slice_derivations)),
        ("sliced_facts", Json::int(outcome.solver_facts)),
        ("exhaustive_facts", Json::int(exhaustive_facts)),
        (
            "demanded_ratio",
            Json::ms(if exhaustive_facts > 0 {
                outcome.solver_facts as f64 / exhaustive_facts as f64
            } else {
                0.0
            }),
        ),
        ("points_to_size", Json::int(outcome.answers[0].1.len())),
    ])
}

fn next_bench_path() -> String {
    let mut max = 0u32;
    if let Ok(entries) = std::fs::read_dir(".") {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|num| num.parse::<u32>().ok())
            {
                max = max.max(n);
            }
        }
    }
    format!("BENCH_{}.json", max + 1)
}

fn main() {
    let mut scale = 20usize;
    let mut repeat = 3usize;
    // Width of the `tstring_par` cell. Defaults to 4 rather than auto so
    // the frontier-parallel engine is exercised even on one-core CI boxes
    // (oversubscription cannot change answers, only latency).
    let mut threads = 4usize;
    let mut only: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut profile_folded: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a positive integer");
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--repeat needs a positive integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--threads needs a positive integer");
            }
            "--bench" => only = Some(args.next().expect("--bench needs a name")),
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--trace-json" => trace_json = Some(args.next().expect("--trace-json needs a path")),
            "--profile-folded" => {
                profile_folded = Some(args.next().expect("--profile-folded needs a path"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: regress [--scale N] [--repeat N] [--threads N] [--bench NAME] \
                     [--out PATH] [--trace-json PATH] [--profile-folded PATH]"
                );
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    if trace_json.is_some() {
        ctxform_obs::enable_tracing(ctxform_obs::trace::DEFAULT_CAPACITY);
    }
    let profiling = profile_folded.is_some();
    let profile_store = ctxform_server::ProfileStore::default();
    // Applied to the cstring/tstring cells when `--profile-folded` is on;
    // the parity cells (subs/par/incr/demand) stay unprofiled so their
    // timing comparisons against `tstring` are not perturbed.
    let with_prof = |c: AnalysisConfig| if profiling { c.with_profiling() } else { c };
    let started = Instant::now();
    let configs = Sensitivity::paper_configs();
    let mut bench_objs: Vec<(String, Json)> = Vec::new();
    // Aggregate wall time of the transformer-string 2-object+H column —
    // the paper's headline configuration, tracked as the harness's single
    // headline number.
    let mut tstring_2objh_ms = 0.0f64;
    let mut cstring_2objh_ms = 0.0f64;

    for (name, _) in dacapo_like() {
        if let Some(filter) = &only {
            if name != filter {
                continue;
            }
        }
        logger::info("regress", format!("{name} (scale {scale})..."));
        let source = benchmark_source(name, scale);
        let program = compile(&source)
            .expect("generated programs are valid")
            .program;
        // Single additive driver-class edit for the incremental cell,
        // seeded per benchmark so the edit shape varies across rows but
        // not across runs.
        let edited_source = append_edit(&source, fx_hash_one(&name), 0);
        let edited = compile(&edited_source)
            .expect("edited programs are valid")
            .program;
        // Single-tuple deleting edit for the DRed deletion cell: with a
        // 0% removal rate the script's guaranteed-retractive fallback
        // removes exactly one `assign` tuple — the canonical "small
        // edit". (Percentage-scale removals over-delete most of the
        // database through the coarse seeding and lose to a re-solve.)
        let deleted = retract_edit_script(&program, fx_hash_one(&name), 1, 0)
            .pop()
            .expect("script has steps+1 revisions");
        let stats = program.stats();
        let mut pairs: Vec<(String, Json)> = vec![(
            "program".into(),
            Json::obj([
                ("methods", Json::int(stats.methods)),
                ("vars", Json::int(stats.vars)),
                ("heaps", Json::int(stats.heaps)),
                ("invs", Json::int(stats.invs)),
                ("fields", Json::int(stats.fields)),
                ("types", Json::int(stats.types)),
                ("input_facts", Json::int(stats.input_facts)),
            ]),
        )];
        for s in &configs {
            let c = best_of(
                &program,
                &with_prof(AnalysisConfig::context_strings(*s)),
                repeat,
            );
            let t = best_of(
                &program,
                &with_prof(AnalysisConfig::transformer_strings(*s)),
                repeat,
            );
            profile_store.record(&c.stats);
            profile_store.record(&t.stats);
            let t_subs = best_of(
                &program,
                &AnalysisConfig::transformer_strings(*s).with_subsumption(),
                repeat,
            );
            let t_par = best_of(
                &program,
                &AnalysisConfig::transformer_strings(*s).with_threads(threads),
                repeat,
            );
            let t_scc = best_of(
                &program,
                &AnalysisConfig::transformer_strings(*s).with_summary_scc(),
                repeat,
            );
            // Subsumption prunes redundant context-sensitive tuples but
            // must never change the CI answer.
            assert_eq!(
                ci_digest(&t_subs),
                ci_digest(&t),
                "{s}: subsumption changed the CI facts"
            );
            // The frontier-parallel engine must be bit-identical to the
            // serial one: same CI digest and same fact counts, for every
            // thread count.
            assert_eq!(
                ci_digest(&t_par),
                ci_digest(&t),
                "{s}: parallel engine changed the CI facts"
            );
            assert_eq!(
                t_par.stats.total(),
                t.stats.total(),
                "{s}: parallel engine changed the cs-fact counts"
            );
            // So must the bottom-up SCC summary engine — the regress
            // harness re-checks the fuzzed parity oracle at bench scale.
            assert_eq!(
                ci_digest(&t_scc),
                ci_digest(&t),
                "{s}: summary-scc engine changed the CI facts"
            );
            assert_eq!(
                t_scc.stats.total(),
                t.stats.total(),
                "{s}: summary-scc engine changed the cs-fact counts"
            );
            // The SCC schedule and summary counters ride along in an
            // extra `scc` object on the cell.
            let mut t_scc_json = run_json(&t_scc);
            if let Json::Obj(pairs) = &mut t_scc_json {
                pairs.push((
                    "scc".into(),
                    Json::obj([
                        ("components", Json::int(t_scc.stats.scc_count)),
                        ("max_size", Json::int(t_scc.stats.scc_max_size)),
                        ("waves", Json::int(t_scc.stats.scc_waves)),
                        (
                            "summaries_synthesized",
                            Json::uint(t_scc.stats.summaries_synthesized),
                        ),
                        (
                            "summaries_applied",
                            Json::uint(t_scc.stats.summaries_applied),
                        ),
                    ]),
                ));
            }
            if s.to_string() == "2-object+H" {
                cstring_2objh_ms += c.stats.duration.as_secs_f64() * 1000.0;
                tstring_2objh_ms += t.stats.duration.as_secs_f64() * 1000.0;
            }
            let t_incr = incr_cell(
                &program,
                &edited,
                &AnalysisConfig::transformer_strings(*s),
                repeat,
            );
            let t_incr_del = incr_del_cell(
                &program,
                &deleted,
                &AnalysisConfig::transformer_strings(*s),
                repeat,
            );
            let t_demand = demand_cell(&program, &AnalysisConfig::transformer_strings(*s), repeat);
            pairs.push((
                s.to_string(),
                Json::obj([
                    ("cstring", run_json(&c)),
                    ("tstring", run_json(&t)),
                    ("tstring_subs", run_json(&t_subs)),
                    ("tstring_par", run_json(&t_par)),
                    ("tstring_scc", t_scc_json),
                    ("tstring_incr", t_incr),
                    ("tstring_incr_del", t_incr_del),
                    ("tstring_demand", t_demand),
                ]),
            ));
        }
        bench_objs.push((name.to_owned(), Json::Obj(pairs)));
    }

    if bench_objs.is_empty() {
        let known: Vec<&str> = dacapo_like().into_iter().map(|(n, _)| n).collect();
        logger::error(
            "regress",
            format!(
                "no benchmark matched {:?}; known benchmarks: {}",
                only.as_deref().unwrap_or(""),
                known.join(", ")
            ),
        );
        std::process::exit(1);
    }
    let path = out_path.unwrap_or_else(next_bench_path);
    let benchmark_count = bench_objs.len();
    let doc = Json::obj([
        ("schema", Json::str("ctxform-regress/8")),
        ("scale", Json::int(scale)),
        ("repeat", Json::int(repeat)),
        ("par_threads", Json::int(threads)),
        (
            "harness_ms",
            Json::ms(started.elapsed().as_secs_f64() * 1000.0),
        ),
        ("cstring_2objH_total_ms", Json::ms(cstring_2objh_ms)),
        ("tstring_2objH_total_ms", Json::ms(tstring_2objh_ms)),
        ("benchmarks", Json::Obj(bench_objs)),
    ]);
    std::fs::write(&path, doc.to_pretty()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    if let Some(profile_path) = &profile_folded {
        let folded = profile_store.folded();
        std::fs::write(profile_path, &folded)
            .unwrap_or_else(|e| panic!("cannot write {profile_path}: {e}"));
        logger::info(
            "regress",
            format!(
                "wrote folded profile to {profile_path} ({} profiled solves, {} stacks)",
                profile_store.solves(),
                folded.lines().count()
            ),
        );
    }
    if let Some(trace_path) = &trace_json {
        let dump = ctxform_obs::take_trace();
        ctxform_obs::disable_tracing();
        std::fs::write(trace_path, dump.to_json())
            .unwrap_or_else(|e| panic!("cannot write {trace_path}: {e}"));
        logger::info(
            "regress",
            format!(
                "wrote {} trace records to {trace_path} ({} dropped)",
                dump.records.len(),
                dump.dropped
            ),
        );
    }
    logger::info(
        "regress",
        format!(
            "wrote {path} ({benchmark_count} benchmarks, tstring 2-object+H total {tstring_2objh_ms:.1}ms)"
        ),
    );
}
