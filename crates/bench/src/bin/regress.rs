//! Bench-regression harness: runs the Figure 6 matrix at a fixed scale and
//! writes a machine-readable `BENCH_<n>.json` trajectory point.
//!
//! ```text
//! cargo run --release -p ctxform-bench --bin regress -- \
//!     [--scale N] [--repeat N] [--bench NAME] [--out PATH]
//! ```
//!
//! Each run records, per benchmark and per Figure 6 configuration, for both
//! abstractions: context-sensitive fact counts, solver wall time, the
//! probe/compose/memo counters from [`ctxform::SolverStats`], the interner
//! size, and an order-independent Fx digest of the context-insensitive
//! facts (so two runs can be compared for byte-identical CI results
//! without storing the facts themselves). With `--repeat N` (default 3)
//! each cell is solved `N` times and the fastest run is recorded —
//! min-of-N is the noise-robust estimator on a shared machine — after
//! asserting that every repeat produced the same CI digest and fact
//! counts.
//!
//! Without `--out`, the file is named `BENCH_<n>.json` where `n` is one
//! more than the largest existing trajectory point in the current
//! directory — so successive PRs append `BENCH_1.json`, `BENCH_2.json`, …
//! and any later run can diff against the checked-in history.

use std::fmt::Write as _;
use std::time::Instant;

use ctxform::{analyze, AnalysisConfig, AnalysisResult};
use ctxform_algebra::Sensitivity;
use ctxform_bench::compile_benchmark;
use ctxform_hash::fx_hash_one;
use ctxform_synth::dacapo_like;

/// An order-independent digest of the CI projections: each fact set is
/// sorted and hashed as a sequence, then the five relation digests are
/// combined. Identical CI facts ⇒ identical digest, on every platform.
fn ci_digest(r: &AnalysisResult) -> u64 {
    let mut pts: Vec<_> = r.ci.pts.iter().copied().collect();
    pts.sort_unstable();
    let mut hpts: Vec<_> = r.ci.hpts.iter().copied().collect();
    hpts.sort_unstable();
    let mut call: Vec<_> = r.ci.call.iter().copied().collect();
    call.sort_unstable();
    let mut spts: Vec<_> = r.ci.spts.iter().copied().collect();
    spts.sort_unstable();
    let mut reach: Vec<_> = r.ci.reach.iter().copied().collect();
    reach.sort_unstable();
    fx_hash_one(&(pts, hpts, call, spts, reach))
}

/// Serializes one analysis run as a JSON object (hand-rolled: the build
/// environment is offline, so no serde).
fn run_json(r: &AnalysisResult) -> String {
    let s = &r.stats;
    let mut o = String::new();
    let _ = write!(
        o,
        "{{\"pts\": {}, \"hpts\": {}, \"hload\": {}, \"call\": {}, \"spts\": {}, \
         \"reach\": {}, \"total\": {}, \"time_ms\": {:.3}, \"events\": {}, \
         \"probes\": {}, \"compose_calls\": {}, \"compose_bottom\": {}, \
         \"compose_memo_hits\": {}, \"compose_memo_misses\": {}, \
         \"subsume_memo_hits\": {}, \"subsume_memo_misses\": {}, \
         \"subsumed_dropped\": {}, \"subsumed_retired\": {}, \
         \"interned_contexts\": {}, \
         \"ci\": {{\"pts\": {}, \"hpts\": {}, \"call\": {}, \"spts\": {}, \"reach\": {}}}, \
         \"ci_digest\": \"{:016x}\"}}",
        s.pts,
        s.hpts,
        s.hload,
        s.call,
        s.spts,
        s.reach,
        s.total(),
        s.duration.as_secs_f64() * 1000.0,
        s.events,
        s.probes,
        s.compose_calls,
        s.compose_bottom,
        s.compose_memo_hits,
        s.compose_memo_misses,
        s.subsume_memo_hits,
        s.subsume_memo_misses,
        s.subsumed_dropped,
        s.subsumed_retired,
        s.interned_contexts,
        r.ci.pts.len(),
        r.ci.hpts.len(),
        r.ci.call.len(),
        r.ci.spts.len(),
        r.ci.reach.len(),
        ci_digest(r)
    );
    o
}

/// Solves `program` under `config` `repeat` times and returns the run
/// with the smallest solver wall time, panicking if any two repeats
/// disagree on the CI facts or context-sensitive fact counts (a
/// nondeterminism bug the harness must not average away).
fn best_of(
    program: &ctxform_ir::Program,
    config: &AnalysisConfig,
    repeat: usize,
) -> AnalysisResult {
    let mut best = analyze(program, config);
    let (digest, total) = (ci_digest(&best), best.stats.total());
    for _ in 1..repeat {
        let r = analyze(program, config);
        assert_eq!(
            ci_digest(&r),
            digest,
            "{config}: CI facts differ across repeats"
        );
        assert_eq!(
            r.stats.total(),
            total,
            "{config}: cs-fact counts differ across repeats"
        );
        if r.stats.duration < best.stats.duration {
            best = r;
        }
    }
    best
}

fn next_bench_path() -> String {
    let mut max = 0u32;
    if let Ok(entries) = std::fs::read_dir(".") {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|num| num.parse::<u32>().ok())
            {
                max = max.max(n);
            }
        }
    }
    format!("BENCH_{}.json", max + 1)
}

fn main() {
    let mut scale = 20usize;
    let mut repeat = 3usize;
    let mut only: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a positive integer");
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--repeat needs a positive integer");
            }
            "--bench" => only = Some(args.next().expect("--bench needs a name")),
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--help" | "-h" => {
                eprintln!("usage: regress [--scale N] [--repeat N] [--bench NAME] [--out PATH]");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }

    let started = Instant::now();
    let configs = Sensitivity::paper_configs();
    let mut bench_objs: Vec<String> = Vec::new();
    // Aggregate wall time of the transformer-string 2-object+H column —
    // the paper's headline configuration, tracked as the harness's single
    // headline number.
    let mut tstring_2objh_ms = 0.0f64;
    let mut cstring_2objh_ms = 0.0f64;

    for (name, _) in dacapo_like() {
        if let Some(filter) = &only {
            if name != filter {
                continue;
            }
        }
        eprintln!("regress: {name} (scale {scale})...");
        let program = compile_benchmark(name, scale);
        let stats = program.stats();
        let mut cfg_objs: Vec<String> = Vec::new();
        for s in &configs {
            let c = best_of(&program, &AnalysisConfig::context_strings(*s), repeat);
            let t = best_of(&program, &AnalysisConfig::transformer_strings(*s), repeat);
            if s.to_string() == "2-object+H" {
                cstring_2objh_ms += c.stats.duration.as_secs_f64() * 1000.0;
                tstring_2objh_ms += t.stats.duration.as_secs_f64() * 1000.0;
            }
            cfg_objs.push(format!(
                "      \"{}\": {{\"cstring\": {}, \"tstring\": {}}}",
                s,
                run_json(&c),
                run_json(&t)
            ));
        }
        let program_obj = format!(
            "{{\"methods\": {}, \"vars\": {}, \"heaps\": {}, \"invs\": {}, \
             \"fields\": {}, \"types\": {}, \"input_facts\": {}}}",
            stats.methods,
            stats.vars,
            stats.heaps,
            stats.invs,
            stats.fields,
            stats.types,
            stats.input_facts
        );
        bench_objs.push(format!(
            "    \"{name}\": {{\n      \"program\": {program_obj},\n{}\n    }}",
            cfg_objs.join(",\n")
        ));
    }

    if bench_objs.is_empty() {
        let known: Vec<&str> = dacapo_like().into_iter().map(|(n, _)| n).collect();
        eprintln!(
            "regress: no benchmark matched {:?}; known benchmarks: {}",
            only.as_deref().unwrap_or(""),
            known.join(", ")
        );
        std::process::exit(1);
    }
    let path = out_path.unwrap_or_else(next_bench_path);
    let json = format!(
        "{{\n  \"schema\": \"ctxform-regress/1\",\n  \"scale\": {scale},\n  \
         \"repeat\": {repeat},\n  \"harness_ms\": {:.1},\n  \
         \"cstring_2objH_total_ms\": {:.3},\n  \
         \"tstring_2objH_total_ms\": {:.3},\n  \"benchmarks\": {{\n{}\n  }}\n}}\n",
        started.elapsed().as_secs_f64() * 1000.0,
        cstring_2objh_ms,
        tstring_2objh_ms,
        bench_objs.join(",\n")
    );
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!(
        "regress: wrote {path} ({} benchmarks, tstring 2-object+H total {:.1}ms)",
        bench_objs.len(),
        tstring_2objh_ms
    );
}
