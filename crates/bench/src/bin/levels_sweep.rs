//! Extension experiment: how both abstractions scale as the
//! context-sensitivity levels grow beyond the paper's evaluated set
//! (k-call and k-object for k = 1..4).
//!
//! ```text
//! cargo run --release -p ctxform-bench --bin levels_sweep [benchmark] [scale]
//! ```

use ctxform::{analyze, AnalysisConfig};
use ctxform_algebra::{Flavour, Sensitivity};
use ctxform_bench::compile_benchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "luindex".to_owned());
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let program = compile_benchmark(&name, scale);
    println!("{name} at scale {scale}: {}", program.stats());
    println!(
        "\n{:14} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "config", "cstr facts", "cstr time", "tstr facts", "tstr time", "Δfacts"
    );
    let mut configs: Vec<Sensitivity> = Vec::new();
    for k in 1..=4usize {
        configs.push(Sensitivity::new(Flavour::CallSite, k, k.saturating_sub(1)).unwrap());
        configs.push(Sensitivity::new(Flavour::Object, k, k - 1).unwrap());
        configs.push(Sensitivity::new(Flavour::HybridObject, k, k - 1).unwrap());
    }
    configs.sort_by_key(|s| (s.levels.method, s.flavour != Flavour::CallSite));
    for s in configs {
        let c = analyze(&program, &AnalysisConfig::context_strings(s));
        let t = analyze(&program, &AnalysisConfig::transformer_strings(s));
        println!(
            "{:14} {:>12} {:>10.1?} {:>12} {:>10.1?} {:>7.1}%",
            s.to_string(),
            c.stats.total(),
            c.stats.duration,
            t.stats.total(),
            t.stats.duration,
            100.0 * (c.stats.total() as f64 - t.stats.total() as f64) / c.stats.total() as f64,
        );
    }
    println!(
        "\nThe paper stops at 2-object+H ('the cutting-edge analysis … that\n\
         scales to moderately sized programs', §9); the sweep shows the gap\n\
         between the abstractions widening with k."
    );
}
