//! `analyze`: run the pointer analysis from the command line.
//!
//! Accepts either MiniJava source (`.mj`/`.java`) or a `ctxform-ir` fact
//! file (anything else), picks the abstraction and sensitivity from
//! flags, and prints summary statistics plus (optionally) the points-to
//! sets of named variables.
//!
//! ```text
//! analyze program.mj --config 2-object+H --abstraction tstring
//! analyze facts.txt --config 1-call+H --abstraction cstring --query Main.main::x
//! analyze program.mj --trace-json trace.json   # dump solver spans/events
//! ```
//!
//! `--trace-json PATH` enables the in-process trace ring for the solve
//! and writes the captured spans and events (`ctxform-trace/1` JSON) to
//! `PATH`. Tracing never changes the analysis result — only what gets
//! recorded about it.

use std::process::ExitCode;

use ctxform::{analyze, AbstractionKind, AnalysisConfig};
use ctxform_ir::{text, Program};
use ctxform_minijava::compile;
use ctxform_obs::logger;

fn load(path: &str) -> Result<Program, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".mj") || path.ends_with(".java") {
        compile(&content)
            .map(|m| m.program)
            .map_err(|e| format!("{path}:{e}"))
    } else {
        text::parse(&content).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!(
            "usage: analyze <program.mj|facts.txt> [--config LABEL] \
             [--abstraction cstring|tstring|ci] [--naive] [--subsumption] \
             [--threads N] [--trace-json PATH] [--query Method::var]..."
        );
        return ExitCode::FAILURE;
    };
    let mut label = "2-object+H".to_owned();
    let mut kind = AbstractionKind::TransformerStrings;
    let mut naive = false;
    let mut subsumption = false;
    let mut threads = 1usize;
    let mut trace_json: Option<String> = None;
    let mut queries: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => label = args.next().expect("--config needs a label"),
            // 0 = auto-detect; results are identical for every value.
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a non-negative integer")
            }
            "--abstraction" => {
                kind = match args.next().as_deref() {
                    Some("cstring") => AbstractionKind::ContextStrings,
                    Some("tstring") => AbstractionKind::TransformerStrings,
                    Some("ci") => AbstractionKind::Insensitive,
                    other => {
                        logger::error("analyze", format!("unknown abstraction {other:?}"));
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--naive" => naive = true,
            "--subsumption" => subsumption = true,
            "--trace-json" => trace_json = Some(args.next().expect("--trace-json needs a path")),
            "--query" => queries.push(args.next().expect("--query needs Method::var")),
            other => {
                logger::error("analyze", format!("unknown argument `{other}`"));
                return ExitCode::FAILURE;
            }
        }
    }
    let program = match load(&path) {
        Ok(p) => p,
        Err(e) => {
            logger::error("analyze", e);
            return ExitCode::FAILURE;
        }
    };
    let mut config = match kind {
        AbstractionKind::Insensitive => AnalysisConfig::insensitive(),
        AbstractionKind::ContextStrings => match label.parse() {
            Ok(s) => AnalysisConfig::context_strings(s),
            Err(e) => {
                logger::error("analyze", format!("{e}"));
                return ExitCode::FAILURE;
            }
        },
        AbstractionKind::TransformerStrings => match label.parse() {
            Ok(s) => AnalysisConfig::transformer_strings(s),
            Err(e) => {
                logger::error("analyze", format!("{e}"));
                return ExitCode::FAILURE;
            }
        },
    };
    if naive {
        config = config.with_naive_joins();
    }
    if subsumption {
        config = config.with_subsumption();
    }
    config = config.with_threads(threads);
    if trace_json.is_some() {
        ctxform_obs::enable_tracing(ctxform_obs::trace::DEFAULT_CAPACITY);
    }
    println!("program: {}", program.stats());
    let result = analyze(&program, &config);
    if let Some(path) = &trace_json {
        let dump = ctxform_obs::take_trace();
        ctxform_obs::disable_tracing();
        let records = dump.records.len();
        if let Err(e) = std::fs::write(path, dump.to_json()) {
            logger::error("analyze", format!("cannot write {path}: {e}"));
            return ExitCode::FAILURE;
        }
        logger::info(
            "analyze",
            format!(
                "wrote {records} trace records to {path} ({} dropped)",
                dump.dropped
            ),
        );
    }
    println!("{config}:");
    print!("{}", result.stats.report());
    println!(
        "context-insensitive projections: pts {} | hpts {} | call {} | reachable methods {}",
        result.ci.pts.len(),
        result.ci.hpts.len(),
        result.ci.call.len(),
        result.ci.reach.len()
    );
    for query in &queries {
        let Some((method_name, var_name)) = query.split_once("::") else {
            logger::error(
                "analyze",
                format!("--query must look like Method::var, got `{query}`"),
            );
            return ExitCode::FAILURE;
        };
        let found = program
            .var_names
            .iter()
            .enumerate()
            .find(|&(i, n)| {
                n == var_name && program.method_names[program.var_method[i].index()] == method_name
            })
            .map(|(i, _)| ctxform_ir::Var::from_index(i));
        match found {
            None => println!("  {query}: no such variable"),
            Some(v) => {
                let sites: Vec<&str> = result
                    .ci
                    .points_to(v)
                    .into_iter()
                    .map(|h| program.heap_names[h.index()].as_str())
                    .collect();
                println!("  pts({query}) = {sites:?}");
            }
        }
    }
    ExitCode::SUCCESS
}
