//! `analyze`: run the pointer analysis from the command line.
//!
//! Accepts either MiniJava source (`.mj`/`.java`) or a `ctxform-ir` fact
//! file (anything else), picks the abstraction and sensitivity from
//! flags, and prints summary statistics plus (optionally) the points-to
//! sets of named variables.
//!
//! ```text
//! analyze program.mj --config 2-object+H --abstraction tstring
//! analyze facts.txt --config 1-call+H --abstraction cstring --query Main.main::x
//! ```

use std::process::ExitCode;

use ctxform::{analyze, AbstractionKind, AnalysisConfig};
use ctxform_ir::{text, Program};
use ctxform_minijava::compile;

fn load(path: &str) -> Result<Program, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".mj") || path.ends_with(".java") {
        compile(&content)
            .map(|m| m.program)
            .map_err(|e| format!("{path}:{e}"))
    } else {
        text::parse(&content).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!(
            "usage: analyze <program.mj|facts.txt> [--config LABEL] \
             [--abstraction cstring|tstring|ci] [--naive] [--subsumption] \
             [--threads N] [--query Method::var]..."
        );
        return ExitCode::FAILURE;
    };
    let mut label = "2-object+H".to_owned();
    let mut kind = AbstractionKind::TransformerStrings;
    let mut naive = false;
    let mut subsumption = false;
    let mut threads = 1usize;
    let mut queries: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => label = args.next().expect("--config needs a label"),
            // 0 = auto-detect; results are identical for every value.
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a non-negative integer")
            }
            "--abstraction" => {
                kind = match args.next().as_deref() {
                    Some("cstring") => AbstractionKind::ContextStrings,
                    Some("tstring") => AbstractionKind::TransformerStrings,
                    Some("ci") => AbstractionKind::Insensitive,
                    other => {
                        eprintln!("unknown abstraction {other:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--naive" => naive = true,
            "--subsumption" => subsumption = true,
            "--query" => queries.push(args.next().expect("--query needs Method::var")),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let program = match load(&path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = match kind {
        AbstractionKind::Insensitive => AnalysisConfig::insensitive(),
        AbstractionKind::ContextStrings => match label.parse() {
            Ok(s) => AnalysisConfig::context_strings(s),
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        },
        AbstractionKind::TransformerStrings => match label.parse() {
            Ok(s) => AnalysisConfig::transformer_strings(s),
            Err(e) => {
                eprintln!("analyze: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if naive {
        config = config.with_naive_joins();
    }
    if subsumption {
        config = config.with_subsumption();
    }
    config = config.with_threads(threads);
    println!("program: {}", program.stats());
    let result = analyze(&program, &config);
    println!("{config}:");
    print!("{}", result.stats.report());
    println!(
        "context-insensitive projections: pts {} | hpts {} | call {} | reachable methods {}",
        result.ci.pts.len(),
        result.ci.hpts.len(),
        result.ci.call.len(),
        result.ci.reach.len()
    );
    for query in &queries {
        let Some((method_name, var_name)) = query.split_once("::") else {
            eprintln!("--query must look like Method::var, got `{query}`");
            return ExitCode::FAILURE;
        };
        let found = program
            .var_names
            .iter()
            .enumerate()
            .find(|&(i, n)| {
                n == var_name && program.method_names[program.var_method[i].index()] == method_name
            })
            .map(|(i, _)| ctxform_ir::Var::from_index(i));
        match found {
            None => println!("  {query}: no such variable"),
            Some(v) => {
                let sites: Vec<&str> = result
                    .ci
                    .points_to(v)
                    .into_iter()
                    .map(|h| program.heap_names[h.index()].as_str())
                    .collect();
                println!("  pts({query}) = {sites:?}");
            }
        }
    }
    ExitCode::SUCCESS
}
