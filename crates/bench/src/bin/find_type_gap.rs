//! Search random programs for a type-sensitivity precision gap
//! (transformer strings strictly less precise than context strings,
//! paper §6). Used to (re)discover the witness pinned by
//! `tests/precision.rs::type_sensitivity_gap_has_witnesses`.
//!
//! ```text
//! cargo run --release -p ctxform-bench --bin find_type_gap
//! ```
use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::compile;
use ctxform_synth::random_program;

fn main() {
    let s = "2-type+H".parse().unwrap();
    for seed in 0..400u64 {
        let src = random_program(seed, 1 + (seed % 4) as usize);
        let module = compile(&src).unwrap();
        let c = analyze(&module.program, &AnalysisConfig::context_strings(s));
        let t = analyze(&module.program, &AnalysisConfig::transformer_strings(s));
        let dp = t.ci.pts.len() - c.ci.pts.len();
        let dc = t.ci.call.len() - c.ci.call.len();
        let dh = t.ci.hpts.len() - c.ci.hpts.len();
        if dp + dc + dh > 0 {
            println!(
                "seed {seed}: +{dp} pts, +{dh} hpts, +{dc} call (cstr pts {})",
                c.ci.pts.len()
            );
        }
    }
    println!("search done");
}
