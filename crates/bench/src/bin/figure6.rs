//! Regenerates the paper's Figure 6 table on the synthetic DaCapo-like
//! benchmark suite.
//!
//! ```text
//! cargo run --release -p ctxform-bench --bin figure6 -- [--scale N] \
//!     [--bench NAME] [--naive] [--subsumption]
//! ```

use ctxform::JoinStrategy;
use ctxform_bench::{render_figure6, run_figure6, Figure6Options};

fn main() {
    let mut opts = Figure6Options::default();
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a positive integer");
            }
            "--bench" => only = Some(args.next().expect("--bench needs a name")),
            "--naive" => opts.join_strategy = JoinStrategy::Naive,
            "--subsumption" => opts.subsumption = true,
            "--help" | "-h" => {
                eprintln!("usage: figure6 [--scale N] [--bench NAME] [--naive] [--subsumption]");
                return;
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    eprintln!(
        "running figure 6 at scale {} ({} joins{})...",
        opts.scale,
        match opts.join_strategy {
            JoinStrategy::Specialized => "specialized",
            JoinStrategy::Naive => "naive",
        },
        if opts.subsumption {
            ", subsumption"
        } else {
            ""
        }
    );
    let rows = run_figure6(&opts, only.as_deref());
    print!("{}", render_figure6(&rows));
}
