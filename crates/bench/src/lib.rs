//! Shared harness for regenerating the paper's evaluation (Figure 6).
//!
//! [`run_figure6`] analyzes the seven DaCapo-like synthetic benchmarks
//! under the paper's five sensitivity configurations with both
//! abstractions, and [`render_figure6`] prints the result in the layout of
//! the paper's Figure 6: per-relation context-sensitive fact counts and
//! solve times for the context-string abstraction, the percentage decrease
//! obtained by transformer strings, the context-insensitive fact counts
//! (with the transformer-string increase) for 2-type+H, and geometric-mean
//! summary rows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Duration;

use ctxform::{analyze, AnalysisConfig, AnalysisResult, JoinStrategy};
use ctxform_algebra::Sensitivity;
use ctxform_ir::{Program, ProgramStats};
use ctxform_minijava::compile;
use ctxform_synth::{dacapo_like, generate};

/// Fact counts and time of one analysis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellStats {
    /// Context-sensitive `pts` count.
    pub pts: usize,
    /// Context-sensitive `hpts` count.
    pub hpts: usize,
    /// Context-sensitive `call` count.
    pub call: usize,
    /// `pts + hpts + call` (the paper's Total row).
    pub total: usize,
    /// Wall-clock solve time.
    pub time: Duration,
    /// Context-insensitive projection sizes (pts, hpts, call).
    pub ci: (usize, usize, usize),
}

impl CellStats {
    fn from_result(r: &AnalysisResult) -> Self {
        CellStats {
            pts: r.stats.pts,
            hpts: r.stats.hpts,
            call: r.stats.call,
            total: r.stats.total(),
            time: r.stats.duration,
            ci: (r.ci.pts.len(), r.ci.hpts.len(), r.ci.call.len()),
        }
    }
}

/// Both abstractions under one sensitivity configuration.
#[derive(Debug, Clone, Copy)]
pub struct ConfigCell {
    /// The sensitivity configuration.
    pub sensitivity: Sensitivity,
    /// Context-string run.
    pub cstring: CellStats,
    /// Transformer-string run.
    pub tstring: CellStats,
}

impl ConfigCell {
    /// Percentage decrease of a quantity from context strings to
    /// transformer strings (positive = transformer smaller).
    pub fn decrease(base: usize, new: usize) -> f64 {
        if base == 0 {
            0.0
        } else {
            100.0 * (base as f64 - new as f64) / base as f64
        }
    }

    /// Percentage decrease in total facts.
    pub fn total_decrease(&self) -> f64 {
        Self::decrease(self.cstring.total, self.tstring.total)
    }

    /// Percentage decrease in solve time.
    pub fn time_decrease(&self) -> f64 {
        let base = self.cstring.time.as_secs_f64();
        if base == 0.0 {
            0.0
        } else {
            100.0 * (base - self.tstring.time.as_secs_f64()) / base
        }
    }
}

/// One benchmark's worth of Figure 6 data.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Benchmark name (antlr, bloat, …).
    pub benchmark: String,
    /// Input program sizes.
    pub program: ProgramStats,
    /// One cell per paper configuration, in Fig. 6 column order.
    pub cells: Vec<ConfigCell>,
}

/// Options for a Figure 6 run.
#[derive(Debug, Clone, Copy)]
pub struct Figure6Options {
    /// Driver-scale multiplier applied to every preset.
    pub scale: usize,
    /// Join strategy for both abstractions (Naive reproduces §7's
    /// strawman).
    pub join_strategy: JoinStrategy,
    /// Enable §8 subsumption elimination for transformer strings.
    pub subsumption: bool,
}

impl Default for Figure6Options {
    fn default() -> Self {
        Figure6Options {
            scale: 20,
            join_strategy: JoinStrategy::Specialized,
            subsumption: false,
        }
    }
}

/// Compiles one named benchmark at the given scale.
///
/// # Panics
///
/// Panics if the preset name is unknown or generation produces an invalid
/// program (a generator bug).
pub fn compile_benchmark(name: &str, scale: usize) -> Program {
    let src = benchmark_source(name, scale);
    compile(&src).expect("generated programs are valid").program
}

/// Generates one named benchmark's MiniJava source at the given scale.
///
/// Exposed separately from [`compile_benchmark`] so harnesses that need
/// to *edit* the source (the incremental re-analysis cell applies
/// `ctxform_synth::append_edit` to it) share the exact program text.
///
/// # Panics
///
/// Panics if the preset name is unknown.
pub fn benchmark_source(name: &str, scale: usize) -> String {
    let cfg = ctxform_synth::preset(name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
        .scale_driver(scale);
    generate(&cfg)
}

/// Runs one (benchmark, sensitivity) cell.
pub fn run_cell(program: &Program, sensitivity: Sensitivity, opts: &Figure6Options) -> ConfigCell {
    let mut c_cfg = AnalysisConfig::context_strings(sensitivity);
    let mut t_cfg = AnalysisConfig::transformer_strings(sensitivity);
    c_cfg.join_strategy = opts.join_strategy;
    t_cfg.join_strategy = opts.join_strategy;
    if opts.subsumption {
        t_cfg.subsumption = true;
    }
    let c = analyze(program, &c_cfg);
    let t = analyze(program, &t_cfg);
    ConfigCell {
        sensitivity,
        cstring: CellStats::from_result(&c),
        tstring: CellStats::from_result(&t),
    }
}

/// Runs the full Figure 6 experiment over all seven benchmarks (or the
/// subset named in `only`).
pub fn run_figure6(opts: &Figure6Options, only: Option<&str>) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    for (name, _) in dacapo_like() {
        if let Some(filter) = only {
            if name != filter {
                continue;
            }
        }
        let program = compile_benchmark(name, opts.scale);
        let cells = Sensitivity::paper_configs()
            .into_iter()
            .map(|s| run_cell(&program, s, opts))
            .collect();
        rows.push(BenchRow {
            benchmark: name.to_owned(),
            program: program.stats(),
            cells,
        });
    }
    rows
}

/// Geometric mean of per-row `new/base` ratios of `f`, expressed as a
/// percentage decrease, as in the paper's last two rows.
pub fn geomean_decrease<F>(rows: &[BenchRow], config_index: usize, f: F) -> f64
where
    F: Fn(&ConfigCell) -> (f64, f64),
{
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for row in rows {
        let (base, new) = f(&row.cells[config_index]);
        if base > 0.0 && new > 0.0 {
            log_sum += (new / base).ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * (1.0 - (log_sum / n as f64).exp())
    }
}

fn fmt_count(n: usize) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.0}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Renders the Figure 6 table as text.
pub fn render_figure6(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    let configs = Sensitivity::paper_configs();
    let _ = writeln!(
        out,
        "Figure 6 reproduction: context-sensitive fact counts and times.\n\
         Each cell: context-string value, then %decrease with transformer strings.\n\
         For 2-type+H the CI line reports context-insensitive facts and the\n\
         transformer-string increase in parentheses (precision loss, section 6).\n"
    );
    for row in rows {
        let _ = writeln!(out, "{}  [{}]", row.benchmark, row.program);
        let mut header = format!("  {:8}", "");
        for c in &configs {
            let _ = write!(header, " {:>14}", c.to_string());
        }
        let _ = writeln!(out, "{header}");
        type Getter = fn(&CellStats) -> usize;
        let rows_spec: [(&str, Getter); 4] = [
            ("pts", |c| c.pts),
            ("hpts", |c| c.hpts),
            ("call", |c| c.call),
            ("Total", |c| c.total),
        ];
        for (label, get) in rows_spec {
            let mut line = format!("  {label:8}");
            for cell in &row.cells {
                let base = get(&cell.cstring);
                let new = get(&cell.tstring);
                let dec = ConfigCell::decrease(base, new);
                let dec_str = if base == new {
                    "    —".to_owned()
                } else {
                    format!("{dec:5.1}%")
                };
                let _ = write!(line, " {:>7} {:>6}", fmt_count(base), dec_str);
            }
            let _ = writeln!(out, "{line}");
        }
        let mut line = format!("  {:8}", "Time");
        for cell in &row.cells {
            let _ = write!(
                line,
                " {:>7} {:>5.1}%",
                fmt_time(cell.cstring.time),
                cell.time_decrease()
            );
        }
        let _ = writeln!(out, "{line}");
        // CI precision line for 2-type+H.
        let type_cell = &row.cells[4];
        let (cp, ch, cc) = type_cell.cstring.ci;
        let (tp, th, tc) = type_cell.tstring.ci;
        let _ = writeln!(
            out,
            "  {:8} 2-type+H CI: pts {}(+{})  hpts {}(+{})  call {}(+{})",
            "",
            fmt_count(cp),
            tp.saturating_sub(cp),
            fmt_count(ch),
            th.saturating_sub(ch),
            fmt_count(cc),
            tc.saturating_sub(cc)
        );
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "Geometric-mean reduction (total facts / analysis time):"
    );
    let mut line_t = format!("  {:8}", "facts");
    let mut line_d = format!("  {:8}", "time");
    for k in 0..configs.len() {
        let g = geomean_decrease(rows, k, |c| {
            (c.cstring.total as f64, c.tstring.total as f64)
        });
        let _ = write!(line_t, " {:>13.1}%", g);
        let g = geomean_decrease(rows, k, |c| {
            (c.cstring.time.as_secs_f64(), c.tstring.time.as_secs_f64())
        });
        let _ = write!(line_d, " {:>13.1}%", g);
    }
    let _ = writeln!(out, "{line_t}");
    let _ = writeln!(out, "{line_d}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_runs_at_small_scale() {
        let opts = Figure6Options {
            scale: 1,
            ..Figure6Options::default()
        };
        let rows = run_figure6(&opts, Some("pmd"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 5);
        let table = render_figure6(&rows);
        assert!(table.contains("pmd"));
        assert!(table.contains("2-object+H"));
        assert!(table.contains("Geometric-mean"));
    }

    #[test]
    fn transformer_strings_never_increase_call_object_totals() {
        let opts = Figure6Options {
            scale: 2,
            ..Figure6Options::default()
        };
        for name in ["luindex", "antlr"] {
            let rows = run_figure6(&opts, Some(name));
            for cell in &rows[0].cells[..4] {
                assert!(
                    cell.tstring.total <= cell.cstring.total,
                    "{name} {}: transformer totals must not grow",
                    cell.sensitivity
                );
            }
        }
    }

    #[test]
    fn decrease_helper_matches_hand_computation() {
        assert!((ConfigCell::decrease(100, 50) - 50.0).abs() < 1e-9);
        assert!((ConfigCell::decrease(0, 50)).abs() < 1e-9);
    }
}
