//! End-to-end tests for the command-line tools.

use std::io::Write;
use std::process::{Command, Stdio};

const DEMO: &str = "
class Box {
    Object value;
    void set(Object v) { this.value = v; }
    Object get() { return this.value; }
}
class Main {
    public static void main(String[] args) {
        Box b = new Box();
        Object o = new Object();
        b.set(o);
        Object r = b.get();
    }
}
";

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ctxform-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

#[test]
fn analyze_runs_on_minijava_source() {
    let path = write_temp("demo.mj", DEMO);
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args([
            path.to_str().unwrap(),
            "--config",
            "2-object+H",
            "--abstraction",
            "tstring",
            "--query",
            "Main.main::r",
        ])
        .stderr(Stdio::piped())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2-object+H/transformer strings"),
        "{stdout}"
    );
    assert!(
        stdout.contains("pts(Main.main::r) = [\"Main.main/new Object#1\"]"),
        "{stdout}"
    );
}

#[test]
fn analyze_accepts_all_abstractions_and_flags() {
    let path = write_temp("demo2.mj", DEMO);
    for extra in [
        vec!["--abstraction", "cstring", "--config", "1-call+H"],
        vec!["--abstraction", "ci"],
        vec![
            "--abstraction",
            "tstring",
            "--config",
            "2-hybrid+H",
            "--naive",
        ],
        vec![
            "--abstraction",
            "tstring",
            "--config",
            "1-object",
            "--subsumption",
        ],
    ] {
        let mut args = vec![path.to_str().unwrap()];
        args.extend(extra.iter().copied());
        let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
            .args(&args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn analyze_rejects_bad_input() {
    let path = write_temp("broken.mj", "class { oops");
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .arg(path.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .output()
        .unwrap();
    assert!(!out.status.success(), "no arguments should fail with usage");
}

#[test]
fn figure6_binary_runs_a_single_benchmark() {
    let out = Command::new(env!("CARGO_BIN_EXE_figure6"))
        .args(["--scale", "1", "--bench", "pmd"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pmd"));
    assert!(stdout.contains("Geometric-mean"));
}
