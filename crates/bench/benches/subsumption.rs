//! Ablation for §8/§10: subsumption elimination on the bloat-like
//! benchmark, whose AST-parent + stack pattern is the paper's worst case
//! for subsuming facts (1-call+H).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxform::{analyze, AnalysisConfig};
use ctxform_algebra::Sensitivity;
use ctxform_bench::compile_benchmark;

fn bench_subsumption(c: &mut Criterion) {
    let program = compile_benchmark("bloat", 4);
    let s: Sensitivity = "1-call+H".parse().unwrap();
    let mut group = c.benchmark_group("subsumption/bloat/1-call+H");
    group.sample_size(10);
    let configs = [
        ("tstring/plain", AnalysisConfig::transformer_strings(s)),
        (
            "tstring/subsumption",
            AnalysisConfig::transformer_strings(s).with_subsumption(),
        ),
        ("cstring", AnalysisConfig::context_strings(s)),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| analyze(&program, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_subsumption);
criterion_main!(benches);
