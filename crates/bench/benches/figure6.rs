//! Criterion timings for the Figure 6 configurations: context strings vs
//! transformer strings on one mid-size benchmark per flavour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxform::{analyze, AnalysisConfig};
use ctxform_algebra::Sensitivity;
use ctxform_bench::compile_benchmark;

fn bench_figure6(c: &mut Criterion) {
    let program = compile_benchmark("pmd", 4);
    let mut group = c.benchmark_group("figure6/pmd");
    group.sample_size(10);
    for s in Sensitivity::paper_configs() {
        group.bench_with_input(BenchmarkId::new("cstring", s), &s, |b, &s| {
            b.iter(|| analyze(&program, &AnalysisConfig::context_strings(s)))
        });
        group.bench_with_input(BenchmarkId::new("tstring", s), &s, |b, &s| {
            b.iter(|| analyze(&program, &AnalysisConfig::transformer_strings(s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure6);
criterion_main!(benches);
