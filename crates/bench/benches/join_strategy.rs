//! Ablation for §7: specialized (boundary-indexed) joins vs the naive
//! probe-everything strategy, for both abstractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxform::{analyze, AnalysisConfig};
use ctxform_algebra::Sensitivity;
use ctxform_bench::compile_benchmark;

fn bench_join_strategy(c: &mut Criterion) {
    let program = compile_benchmark("luindex", 4);
    let s: Sensitivity = "2-object+H".parse().unwrap();
    let mut group = c.benchmark_group("join_strategy/luindex/2-object+H");
    group.sample_size(10);
    let configs = [
        (
            "tstring/specialized",
            AnalysisConfig::transformer_strings(s),
        ),
        (
            "tstring/naive",
            AnalysisConfig::transformer_strings(s).with_naive_joins(),
        ),
        ("cstring/specialized", AnalysisConfig::context_strings(s)),
        (
            "cstring/naive",
            AnalysisConfig::context_strings(s).with_naive_joins(),
        ),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| analyze(&program, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_strategy);
criterion_main!(benches);
