//! Micro-benchmarks for the context-transformation algebra: composition,
//! inversion, normalization, and the interner's prefix walks.

use criterion::{criterion_group, criterion_main, Criterion};
use ctxform_algebra::{CtxtElem, CtxtInterner, Letter, TStr, Word};
use ctxform_ir::Inv;
use std::hint::black_box;

fn bench_algebra(c: &mut Criterion) {
    let mut it = CtxtInterner::new();
    let elems: Vec<CtxtElem> = (0..8).map(|i| CtxtElem::of_inv(Inv(i))).collect();
    let ab = it.from_slice(&elems[0..2]);
    let abc = it.from_slice(&elems[0..3]);
    let t1 = TStr {
        exits: ab,
        wild: false,
        entries: abc,
    };
    let t2 = TStr {
        exits: abc,
        wild: true,
        entries: ab,
    };

    c.bench_function("algebra/compose", |b| {
        b.iter(|| black_box(t1).compose_in(&mut it, black_box(t2.inverse()), 2, 2))
    });
    c.bench_function("algebra/inverse", |b| b.iter(|| black_box(t1).inverse()));
    c.bench_function("algebra/truncate", |b| {
        b.iter(|| black_box(t1).truncate(&it, 1, 1))
    });
    c.bench_function("algebra/subsumes", |b| {
        b.iter(|| black_box(t2).subsumes(&it, black_box(t1)))
    });
    c.bench_function("algebra/is_prefix", |b| {
        b.iter(|| it.is_prefix(black_box(ab), black_box(abc)))
    });
    let word = Word(vec![
        Letter::Entry(elems[0]),
        Letter::Entry(elems[1]),
        Letter::Exit(elems[1]),
        Letter::Wild,
        Letter::Exit(elems[2]),
        Letter::Entry(elems[3]),
    ]);
    c.bench_function("algebra/normalize", |b| {
        b.iter(|| black_box(&word).normalize(&mut it))
    });
}

criterion_group!(benches, bench_algebra);
criterion_main!(benches);
