//! Micro-benchmarks for the generic Datalog engine: transitive closure and
//! the context-insensitive pointer-analysis baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ctxform::datalog_baseline;
use ctxform_bench::compile_benchmark;
use ctxform_datalog::Engine;

fn bench_datalog(c: &mut Criterion) {
    c.bench_function("datalog/transitive_closure_chain500", |b| {
        b.iter(|| {
            let mut e =
                Engine::parse("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).")
                    .unwrap();
            for i in 0..500u32 {
                e.add_fact("edge", &[i, i + 1]).unwrap();
            }
            e.run()
        })
    });
    let program = compile_benchmark("pmd", 2);
    c.bench_function("datalog/ci_baseline_pmd", |b| {
        b.iter(|| datalog_baseline(&program))
    });
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
