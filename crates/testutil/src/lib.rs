//! Shared configuration matrices for the differential test suites.
//!
//! The incremental-parity, demand-parity, SCC-parity, and fuzzing
//! harnesses all sweep the same abstraction × sensitivity grids; before
//! this crate each suite re-declared its own copy (and they drifted —
//! `crates/core/tests/incremental.rs` and
//! `crates/demand/tests/demand_parity.rs` carried two near-identical
//! helpers). One definition here keeps every differential oracle
//! sweeping the same space.
//!
//! The helpers return *base* configurations (no thread count applied);
//! suites layer `with_threads` / `with_solve_mode` on top, typically
//! over [`PARITY_THREADS`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ctxform::AnalysisConfig;
use ctxform_algebra::Sensitivity;

/// The thread counts every parity suite sweeps: the legacy serial path
/// and the scoped-thread parallel engines.
pub const PARITY_THREADS: [usize; 2] = [1, 4];

/// Both context abstractions (context strings and transformer strings)
/// at each of the given sensitivity labels, in label order with context
/// strings first — the order the pre-existing suites baked in.
///
/// # Panics
///
/// Panics on an unparsable sensitivity label; the labels are test
/// constants, so that is a bug in the caller.
pub fn config_matrix(labels: &[&str]) -> Vec<AnalysisConfig> {
    let mut configs = Vec::with_capacity(labels.len() * 2);
    for label in labels {
        let s: Sensitivity = label
            .parse()
            .unwrap_or_else(|e| panic!("bad sensitivity label {label:?}: {e}"));
        configs.push(AnalysisConfig::context_strings(s));
        configs.push(AnalysisConfig::transformer_strings(s));
    }
    configs
}

/// The compact grid of the incremental and fuzzing suites:
/// {cstring, tstring} × {1-call, 1-object}.
pub fn incremental_configs() -> Vec<AnalysisConfig> {
    config_matrix(&["1-call", "1-object"])
}

/// The wider context-sensitive grid of the demand-parity and SCC-parity
/// suites: {cstring, tstring} × {1-call, 1-call+H, 1-object, 2-object+H}.
pub fn cs_configs() -> Vec<AnalysisConfig> {
    config_matrix(&["1-call", "1-call+H", "1-object", "2-object+H"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxform::AbstractionKind;

    #[test]
    fn matrices_cover_both_abstractions_per_label() {
        let m = incremental_configs();
        assert_eq!(m.len(), 4);
        let wide = cs_configs();
        assert_eq!(wide.len(), 8);
        for pair in wide.chunks(2) {
            assert_eq!(pair[0].abstraction, AbstractionKind::ContextStrings);
            assert_eq!(pair[1].abstraction, AbstractionKind::TransformerStrings);
            assert_eq!(pair[0].sensitivity, pair[1].sensitivity);
        }
    }

    #[test]
    #[should_panic(expected = "bad sensitivity label")]
    fn bad_labels_panic() {
        config_matrix(&["not-a-sensitivity"]);
    }
}
