//! A concrete interpreter for lowered MiniJava modules.
//!
//! The interpreter executes the same three-address instruction stream that
//! the frontend derives the analysis relations from, and records *dynamic
//! ground truth*: which allocation sites each variable actually held,
//! which objects each field actually referenced, and which methods each
//! invocation site actually called. Soundness tests (Theorem 6.1) assert
//! that every recorded fact appears in every analysis result.
//!
//! Execution is bounded by a step budget, a recursion limit, and a heap
//! limit, so even adversarial random programs terminate; a truncated run
//! still yields valid ground truth (a prefix of a real execution).
//!
//! ```
//! use ctxform_minijava::compile;
//! use ctxform_vm::{run, VmConfig};
//!
//! let module = compile(ctxform_minijava::corpus::BOX)?;
//! let result = run(&module, &VmConfig::default());
//! assert!(result.outcome.is_complete());
//! assert!(!result.facts.pts.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};

use ctxform_ir::{Field, Heap, Inv, Method, ProgramIndex, Var};
use ctxform_minijava::{Body, Instr, Module, Operand};

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmConfig {
    /// Maximum number of executed instructions.
    pub max_steps: usize,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Maximum number of allocated objects.
    pub max_objects: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_steps: 1_000_000,
            max_depth: 256,
            max_objects: 100_000,
        }
    }
}

/// Dynamic ground-truth facts collected during execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynFacts {
    /// Variable `v` held a reference to an object allocated at `h`.
    pub pts: HashSet<(Var, Heap)>,
    /// Field `f` of an object allocated at `g` referenced an object
    /// allocated at `h`.
    pub hpts: HashSet<(Heap, Field, Heap)>,
    /// Invocation site `i` dispatched to method `q`.
    pub call: HashSet<(Inv, Method)>,
    /// Method `q` was executed.
    pub reached: HashSet<Method>,
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `main` ran to completion.
    Complete,
    /// The step budget was exhausted (the collected facts are still a
    /// valid execution prefix).
    StepBudget,
    /// The recursion limit was hit.
    DepthLimit,
    /// The object limit was hit.
    ObjectLimit,
    /// A member access or call on `null`.
    NullDeref,
    /// A virtual call found no target for the receiver's type (MiniJava is
    /// dynamically checked).
    DispatchFailure,
}

impl Outcome {
    /// `true` for [`Outcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }
}

/// The result of running a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmResult {
    /// Collected ground truth (valid for any outcome).
    pub facts: DynFacts,
    /// Why execution stopped.
    pub outcome: Outcome,
}

/// Runs every entry point of `module` under `config` and collects dynamic
/// facts. Entry points run in declaration order against a shared step
/// budget; the first non-complete outcome stops execution.
pub fn run(module: &Module, config: &VmConfig) -> VmResult {
    let index = module.program.index();
    let mut vm = Vm {
        module,
        index,
        config: *config,
        heap: Vec::new(),
        statics: HashMap::new(),
        steps: 0,
        facts: DynFacts::default(),
    };
    for &entry in &module.program.entry_points {
        match vm.call_method(entry, &[], 0) {
            Ok(_) => {}
            Err(outcome) => {
                return VmResult {
                    facts: vm.facts,
                    outcome,
                }
            }
        }
    }
    VmResult {
        facts: vm.facts,
        outcome: Outcome::Complete,
    }
}

/// A run-time value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Null,
    Ref(usize),
}

#[derive(Debug)]
struct Obj {
    site: Heap,
    fields: HashMap<Field, Value>,
}

enum Flow {
    Normal,
    Returned(Value),
}

struct Vm<'a> {
    module: &'a Module,
    index: ProgramIndex,
    config: VmConfig,
    heap: Vec<Obj>,
    statics: HashMap<Field, Value>,
    steps: usize,
    facts: DynFacts,
}

type Frame = HashMap<Var, Value>;

impl<'a> Vm<'a> {
    fn tick(&mut self) -> Result<(), Outcome> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            Err(Outcome::StepBudget)
        } else {
            Ok(())
        }
    }

    fn set_var(&mut self, frame: &mut Frame, var: Var, value: Value) {
        if let Value::Ref(obj) = value {
            self.facts.pts.insert((var, self.heap[obj].site));
        }
        frame.insert(var, value);
    }

    fn get_var(&self, frame: &Frame, var: Var) -> Value {
        *frame.get(&var).unwrap_or(&Value::Null)
    }

    fn operand(&self, frame: &Frame, op: Operand) -> Value {
        match op {
            Operand::Null => Value::Null,
            Operand::Var(v) => self.get_var(frame, v),
        }
    }

    fn call_method(
        &mut self,
        method: Method,
        args: &[Value],
        depth: usize,
    ) -> Result<Value, Outcome> {
        if depth >= self.config.max_depth {
            return Err(Outcome::DepthLimit);
        }
        self.facts.reached.insert(method);
        let mut frame: Frame = HashMap::new();
        for (o, &value) in args.iter().enumerate() {
            if let Some(&formal) = self.index.formal_of.get(&(method, o as u32)) {
                self.set_var(&mut frame, formal, value);
            }
        }
        let body: &Body = &self.module.bodies[method.index()];
        match self.exec_block(&body.instrs.clone(), &mut frame, depth)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    fn call_with_this(
        &mut self,
        method: Method,
        this: Value,
        args: &[Value],
        depth: usize,
    ) -> Result<Value, Outcome> {
        if depth >= self.config.max_depth {
            return Err(Outcome::DepthLimit);
        }
        self.facts.reached.insert(method);
        let mut frame: Frame = HashMap::new();
        if let Some(&this_var) = self.index.this_of_method.get(&method) {
            self.set_var(&mut frame, this_var, this);
        }
        for (o, &value) in args.iter().enumerate() {
            if let Some(&formal) = self.index.formal_of.get(&(method, o as u32)) {
                self.set_var(&mut frame, formal, value);
            }
        }
        let body: &Body = &self.module.bodies[method.index()];
        match self.exec_block(&body.instrs.clone(), &mut frame, depth)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(Value::Null),
        }
    }

    fn exec_block(
        &mut self,
        instrs: &[Instr],
        frame: &mut Frame,
        depth: usize,
    ) -> Result<Flow, Outcome> {
        for instr in instrs {
            self.tick()?;
            match instr {
                Instr::New { dst, heap } => {
                    if self.heap.len() >= self.config.max_objects {
                        return Err(Outcome::ObjectLimit);
                    }
                    let obj = self.heap.len();
                    self.heap.push(Obj {
                        site: *heap,
                        fields: HashMap::new(),
                    });
                    self.set_var(frame, *dst, Value::Ref(obj));
                }
                Instr::AssignNull { dst } => {
                    self.set_var(frame, *dst, Value::Null);
                }
                Instr::Assign { dst, src } => {
                    let v = self.get_var(frame, *src);
                    self.set_var(frame, *dst, v);
                }
                Instr::Load { dst, base, field } => {
                    let Value::Ref(obj) = self.get_var(frame, *base) else {
                        return Err(Outcome::NullDeref);
                    };
                    let v = *self.heap[obj].fields.get(field).unwrap_or(&Value::Null);
                    self.set_var(frame, *dst, v);
                }
                Instr::StaticStore { value, field } => {
                    let v = self.operand(frame, *value);
                    self.statics.insert(*field, v);
                }
                Instr::StaticLoad { dst, field } => {
                    let v = *self.statics.get(field).unwrap_or(&Value::Null);
                    self.set_var(frame, *dst, v);
                }
                Instr::Store { value, base, field } => {
                    let Value::Ref(obj) = self.get_var(frame, *base) else {
                        return Err(Outcome::NullDeref);
                    };
                    let v = self.operand(frame, *value);
                    if let Value::Ref(target) = v {
                        let g = self.heap[obj].site;
                        let h = self.heap[target].site;
                        self.facts.hpts.insert((g, *field, h));
                    }
                    self.heap[obj].fields.insert(*field, v);
                }
                Instr::CallStatic {
                    inv,
                    target,
                    args,
                    dst,
                } => {
                    let arg_values: Vec<Value> =
                        args.iter().map(|&a| self.operand(frame, a)).collect();
                    self.facts.call.insert((*inv, *target));
                    let result = self.call_method(*target, &arg_values, depth + 1)?;
                    if let Some(dst) = dst {
                        self.set_var(frame, *dst, result);
                    }
                }
                Instr::CallVirtual {
                    inv,
                    recv,
                    msig,
                    args,
                    dst,
                } => {
                    let Value::Ref(obj) = self.get_var(frame, *recv) else {
                        return Err(Outcome::NullDeref);
                    };
                    let site = self.heap[obj].site;
                    let ty = self.index.type_of_heap[site.index()];
                    let Some(target) = self.index.resolve(ty, *msig) else {
                        return Err(Outcome::DispatchFailure);
                    };
                    let arg_values: Vec<Value> =
                        args.iter().map(|&a| self.operand(frame, a)).collect();
                    self.facts.call.insert((*inv, target));
                    let this = Value::Ref(obj);
                    let result = self.call_with_this(target, this, &arg_values, depth + 1)?;
                    if let Some(dst) = dst {
                        self.set_var(frame, *dst, result);
                    }
                }
                Instr::Return { value } => {
                    let v = value
                        .map(|op| self.operand(frame, op))
                        .unwrap_or(Value::Null);
                    return Ok(Flow::Returned(v));
                }
                Instr::If {
                    a,
                    b,
                    eq,
                    then_block,
                    else_block,
                } => {
                    let take_then = (self.operand(frame, *a) == self.operand(frame, *b)) == *eq;
                    let block = if take_then { then_block } else { else_block };
                    if let Flow::Returned(v) = self.exec_block(block, frame, depth)? {
                        return Ok(Flow::Returned(v));
                    }
                }
                Instr::While { a, b, eq, body } => loop {
                    self.tick()?;
                    let go = (self.operand(frame, *a) == self.operand(frame, *b)) == *eq;
                    if !go {
                        break;
                    }
                    if let Flow::Returned(v) = self.exec_block(body, frame, depth)? {
                        return Ok(Flow::Returned(v));
                    }
                },
            }
        }
        Ok(Flow::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxform_minijava::{compile, corpus};

    fn run_src(src: &str) -> VmResult {
        let module = compile(src).expect("compiles");
        run(&module, &VmConfig::default())
    }

    #[test]
    fn box_program_runs_and_records_flow() {
        let module = compile(corpus::BOX).unwrap();
        let result = run(&module, &VmConfig::default());
        assert!(result.outcome.is_complete());
        let main = module.method_by_name("Main.main").unwrap();
        let r1 = module.var_by_name(main, "r1").unwrap();
        let o1 = module.var_by_name(main, "o1").unwrap();
        let h_o1 = module.heap_assigned_to(o1).unwrap();
        assert!(
            result.facts.pts.contains(&(r1, h_o1)),
            "r1 got o1's object back"
        );
        // And not the other box's payload.
        let o2 = module.var_by_name(main, "o2").unwrap();
        let h_o2 = module.heap_assigned_to(o2).unwrap();
        assert!(!result.facts.pts.contains(&(r1, h_o2)));
    }

    #[test]
    fn dispatch_follows_dynamic_type() {
        let module = compile(corpus::DISPATCH).unwrap();
        let result = run(&module, &VmConfig::default());
        assert!(result.outcome.is_complete());
        let circle_make = module.method_by_name("Circle.make").unwrap();
        let square_make = module.method_by_name("Square.make").unwrap();
        let shape_make = module.method_by_name("Shape.make").unwrap();
        assert!(result.facts.reached.contains(&circle_make));
        // `flip` is non-null so the else branch allocates a Square.
        assert!(result.facts.reached.contains(&square_make));
        assert!(!result.facts.reached.contains(&shape_make));
    }

    #[test]
    fn loops_terminate_and_traverse() {
        let module = compile(corpus::LIST).unwrap();
        let result = run(&module, &VmConfig::default());
        assert!(result.outcome.is_complete());
        let main = module.method_by_name("Main.main").unwrap();
        let p = module.var_by_name(main, "p").unwrap();
        // p saw all three payloads.
        let count = result.facts.pts.iter().filter(|&&(v, _)| v == p).count();
        assert_eq!(count, 3);
    }

    #[test]
    fn null_deref_is_reported() {
        let r = run_src(
            "class A { Object f; }
             class Main { public static void main(String[] args) {
                A a = null;
                Object x = a.f;
             } }",
        );
        assert_eq!(r.outcome, Outcome::NullDeref);
    }

    #[test]
    fn infinite_loops_hit_the_step_budget() {
        let module = compile(
            "class Main { public static void main(String[] args) {
                Object x = new Object();
                while (x != null) { x = x; }
             } }",
        )
        .unwrap();
        let r = run(
            &module,
            &VmConfig {
                max_steps: 1000,
                ..VmConfig::default()
            },
        );
        assert_eq!(r.outcome, Outcome::StepBudget);
        assert!(!r.facts.pts.is_empty(), "prefix facts survive");
    }

    #[test]
    fn unbounded_recursion_hits_the_depth_limit() {
        let r = run_src(
            "class A { Object go(Object p) { return this.go(p); } }
             class Main { public static void main(String[] args) {
                A a = new A();
                Object x = a.go(a);
             } }",
        );
        assert_eq!(r.outcome, Outcome::DepthLimit);
    }

    #[test]
    fn allocation_in_loop_hits_object_limit() {
        let module = compile(
            "class Main { public static void main(String[] args) {
                Object x = new Object();
                while (x != null) { x = new Object(); }
             } }",
        )
        .unwrap();
        let r = run(
            &module,
            &VmConfig {
                max_objects: 50,
                ..VmConfig::default()
            },
        );
        assert_eq!(r.outcome, Outcome::ObjectLimit);
    }

    #[test]
    fn uninitialized_locals_read_as_null() {
        let r = run_src(
            "class Main { public static void main(String[] args) {
                Object x;
                Object y = x;
             } }",
        );
        assert!(r.outcome.is_complete());
        assert!(r.facts.pts.is_empty());
    }

    #[test]
    fn fields_default_to_null() {
        let r = run_src(
            "class A { Object f; }
             class Main { public static void main(String[] args) {
                A a = new A();
                Object x = a.f;
             } }",
        );
        assert!(r.outcome.is_complete());
    }

    #[test]
    fn hpts_records_field_targets() {
        let module = compile(corpus::BOX).unwrap();
        let result = run(&module, &VmConfig::default());
        assert_eq!(result.facts.hpts.len(), 2, "two boxes, one payload each");
    }

    #[test]
    fn static_fields_flow_between_methods() {
        let r = run_src(
            "class G { static Object cache; }
             class Main {
                 static void fill() { G.cache = new Object(); }
                 public static void main(String[] args) {
                     Main.fill();
                     Object got = G.cache;
                 }
             }",
        );
        assert!(r.outcome.is_complete());
        // `got` saw the object allocated in fill().
        assert_eq!(r.facts.pts.len(), 2, "{:?}", r.facts.pts);
    }

    #[test]
    fn unset_static_fields_read_null() {
        let r = run_src(
            "class G { static Object empty; }
             class Main { public static void main(String[] args) {
                 Object x = G.empty;
             } }",
        );
        assert!(r.outcome.is_complete());
        assert!(r.facts.pts.is_empty());
    }

    #[test]
    fn every_corpus_program_completes() {
        for (name, src) in corpus::all() {
            let module = compile(src).unwrap();
            let r = run(&module, &VmConfig::default());
            assert!(r.outcome.is_complete(), "{name}: {:?}", r.outcome);
        }
    }
}
