//! Textual Datalog syntax.
//!
//! ```text
//! % comments run to end of line
//! path(X, Y) :- edge(X, Y).
//! path(X, Z) :- path(X, Y), edge(Y, Z).
//! edge(0, 1).
//! ```
//!
//! Identifiers starting with an uppercase letter are variables; `_` is a
//! wildcard; non-negative integers are constants; everything else starting
//! with a lowercase letter is a relation name.

use crate::error::DatalogError;
use crate::rule::{Atom, Rule, Term};

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if let Some(after) = self.rest().strip_prefix('%') {
                let line_len = after.find('\n').map(|i| i + 1).unwrap_or(after.len());
                self.pos += 1 + line_len;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), DatalogError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Option<&'a str> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|&(i, c)| {
                if i == 0 {
                    c.is_ascii_alphabetic() || c == '_'
                } else {
                    c.is_ascii_alphanumeric() || c == '_'
                }
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()?;
        self.pos += end;
        Some(&rest[..end])
    }

    fn number(&mut self) -> Option<u32> {
        let rest = self.rest();
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return None;
        }
        self.pos += digits.len();
        digits.parse().ok()
    }

    fn term(&mut self) -> Result<Term, DatalogError> {
        self.skip_trivia();
        if let Some(n) = self.number() {
            return Ok(Term::Const(n));
        }
        let Some(name) = self.ident() else {
            return Err(self.err("expected a term"));
        };
        if name == "_" {
            Ok(Term::Wildcard)
        } else if name.starts_with(|c: char| c.is_ascii_uppercase()) {
            Ok(Term::Var(name.to_owned()))
        } else {
            // Lowercase identifiers in term position would be atoms of an
            // uninterpreted constant domain; our domain is u32 only.
            Err(self.err(format!(
                "`{name}`: constants are integers and variables start uppercase"
            )))
        }
    }

    fn atom(&mut self) -> Result<Atom, DatalogError> {
        self.skip_trivia();
        let Some(name) = self.ident() else {
            return Err(self.err("expected a relation name"));
        };
        self.skip_trivia();
        self.expect("(")?;
        let mut terms = Vec::new();
        self.skip_trivia();
        if !self.eat(")") {
            loop {
                terms.push(self.term()?);
                self.skip_trivia();
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(Atom::new(name, terms))
    }

    fn rule(&mut self) -> Result<Rule, DatalogError> {
        let head = self.atom()?;
        self.skip_trivia();
        let mut body = Vec::new();
        if self.eat(":-") {
            loop {
                body.push(self.atom()?);
                self.skip_trivia();
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(".")?;
        Ok(Rule::new(head, body))
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// [`DatalogError::Parse`] with the byte offset of the first problem.
pub fn parse_program(source: &str) -> Result<Vec<Rule>, DatalogError> {
    let mut cursor = Cursor::new(source);
    let mut rules = Vec::new();
    loop {
        cursor.skip_trivia();
        if cursor.rest().is_empty() {
            return Ok(rules);
        }
        rules.push(cursor.rule()?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_facts() {
        let rules = parse_program(
            "% a comment\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(0, 1). edge(1, 2).\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].to_string(), "path(X, Y) :- edge(X, Y).");
        assert!(rules[2].is_fact());
    }

    #[test]
    fn parses_wildcards_and_zero_arity() {
        let rules = parse_program("go() :- r(_, X), s(X).").unwrap();
        assert_eq!(rules[0].head.terms.len(), 0);
        assert_eq!(rules[0].body[0].terms[0], Term::Wildcard);
    }

    #[test]
    fn reports_offsets() {
        let err = parse_program("p(X) :- q(X)").unwrap_err();
        let DatalogError::Parse { offset, .. } = err else {
            panic!("wrong error")
        };
        assert_eq!(offset, 12);
    }

    #[test]
    fn rejects_lowercase_terms() {
        assert!(parse_program("p(foo).").is_err());
    }

    #[test]
    fn comments_inside_rules() {
        let rules = parse_program("p(X) :- % inline\n q(X).").unwrap();
        assert_eq!(rules.len(), 1);
    }
}
