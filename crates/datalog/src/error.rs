//! Error type for rule construction, parsing, and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing or validating a Datalog program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A relation was used with two different arities.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity implied by the first use.
        expected: usize,
        /// Arity of the conflicting use.
        found: usize,
    },
    /// A head variable does not occur in any body atom (violates range
    /// restriction, so the rule would derive infinitely many facts).
    UnboundHeadVariable {
        /// The offending variable name.
        variable: String,
        /// The rule, pretty-printed.
        rule: String,
    },
    /// A wildcard appeared in a rule head.
    WildcardInHead {
        /// The rule, pretty-printed.
        rule: String,
    },
    /// The source text could not be parsed.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// A query referenced an unknown relation.
    UnknownRelation(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` used with arity {found} but declared with arity {expected}"
            ),
            DatalogError::UnboundHeadVariable { variable, rule } => {
                write!(
                    f,
                    "head variable `{variable}` is not bound by the body in `{rule}`"
                )
            }
            DatalogError::WildcardInHead { rule } => {
                write!(f, "wildcard `_` is not allowed in a rule head: `{rule}`")
            }
            DatalogError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            DatalogError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
        }
    }
}

impl Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DatalogError::ArityMismatch {
            relation: "edge".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("edge"));
        assert!(e.to_string().contains('3'));
    }
}
