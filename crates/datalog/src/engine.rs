//! Semi-naive bottom-up evaluation with automatic index selection.

use std::collections::{HashMap, HashSet};

use crate::error::DatalogError;
use crate::parser;
use crate::rule::{Atom, Rule, Term};

/// Handle to a relation inside an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelId(pub usize);

#[derive(Debug, Default)]
struct Relation {
    name: String,
    arity: usize,
    /// All tuples in insertion order (the frontier mechanism of semi-naive
    /// evaluation slices this vector into generations).
    tuples: Vec<Vec<u32>>,
    seen: HashSet<Vec<u32>>,
    /// Hash indices over registered column sets, mapping key values to
    /// tuple positions.
    indices: HashMap<Vec<usize>, HashMap<Vec<u32>, Vec<usize>>>,
}

impl Relation {
    fn insert(&mut self, tuple: Vec<u32>) -> bool {
        if self.seen.contains(&tuple) {
            return false;
        }
        let pos = self.tuples.len();
        for (cols, index) in &mut self.indices {
            let key: Vec<u32> = cols.iter().map(|&c| tuple[c]).collect();
            index.entry(key).or_default().push(pos);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    fn register_index(&mut self, cols: Vec<usize>) {
        if cols.is_empty() || self.indices.contains_key(&cols) {
            return;
        }
        let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for (pos, tuple) in self.tuples.iter().enumerate() {
            let key: Vec<u32> = cols.iter().map(|&c| tuple[c]).collect();
            index.entry(key).or_default().push(pos);
        }
        self.indices.insert(cols, index);
    }
}

/// One column of a compiled atom: how to treat the tuple value there.
#[derive(Debug, Clone, Copy)]
enum ColOp {
    /// Must equal this constant.
    CheckConst(u32),
    /// Must equal the value already bound to this variable slot.
    CheckVar(usize),
    /// Binds this variable slot.
    BindVar(usize),
    /// Ignored.
    Ignore,
}

/// A compiled body atom: relation, per-column ops, and the index key.
#[derive(Debug, Clone)]
struct AtomPlan {
    rel: RelId,
    ops: Vec<ColOp>,
    /// Columns of the registered index (bound at lookup time), parallel to
    /// `key_sources`.
    index_cols: Vec<usize>,
    /// Where each index-key value comes from.
    key_sources: Vec<KeySource>,
}

#[derive(Debug, Clone, Copy)]
enum KeySource {
    Const(u32),
    Slot(usize),
}

/// One head column of a compiled rule.
#[derive(Debug, Clone, Copy)]
enum HeadOp {
    Const(u32),
    Slot(usize),
}

/// A compiled (rule, delta-position) pair.
#[derive(Debug, Clone)]
struct Plan {
    /// The relation whose delta drives this plan.
    delta: RelId,
    /// Ops applied to the delta tuple.
    delta_ops: Vec<ColOp>,
    /// Remaining atoms in evaluation order.
    atoms: Vec<AtomPlan>,
    head_rel: RelId,
    head_ops: Vec<HeadOp>,
    n_slots: usize,
}

/// Evaluation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of semi-naive rounds until fixpoint.
    pub rounds: usize,
    /// Number of tuples derived (including initial facts).
    pub tuples: usize,
    /// Number of candidate tuples produced by rule bodies (before dedup).
    pub derivations: usize,
}

/// A positive Datalog program plus its database.
///
/// Build with [`Engine::parse`] or [`Engine::add_rule`]/[`Engine::add_fact`],
/// evaluate with [`Engine::run`], inspect with [`Engine::tuples`].
#[derive(Debug, Default)]
pub struct Engine {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
    rules: Vec<Rule>,
    stats: EvalStats,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Parses a program: a sequence of rules and facts (see crate docs for
    /// the syntax).
    ///
    /// # Errors
    ///
    /// Syntax errors and the validation errors of [`Engine::add_rule`].
    pub fn parse(source: &str) -> Result<Engine, DatalogError> {
        let mut engine = Engine::new();
        for rule in parser::parse_program(source)? {
            engine.add_rule(rule)?;
        }
        Ok(engine)
    }

    /// Interns a relation name, fixing its arity at first use.
    fn intern(&mut self, name: &str, arity: usize) -> Result<RelId, DatalogError> {
        if let Some(&id) = self.by_name.get(name) {
            let expected = self.relations[id.0].arity;
            if expected != arity {
                return Err(DatalogError::ArityMismatch {
                    relation: name.to_owned(),
                    expected,
                    found: arity,
                });
            }
            return Ok(id);
        }
        let id = RelId(self.relations.len());
        self.relations.push(Relation {
            name: name.to_owned(),
            arity,
            ..Relation::default()
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Adds a rule (or a ground fact, if the body is empty and the head is
    /// ground).
    ///
    /// # Errors
    ///
    /// Arity mismatches, unbound head variables, wildcards in the head.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), DatalogError> {
        self.intern(&rule.head.relation, rule.head.terms.len())?;
        for atom in &rule.body {
            self.intern(&atom.relation, atom.terms.len())?;
        }
        // Range restriction.
        let mut bound: HashSet<&str> = HashSet::new();
        for atom in &rule.body {
            for term in &atom.terms {
                if let Term::Var(v) = term {
                    bound.insert(v);
                }
            }
        }
        for term in &rule.head.terms {
            match term {
                Term::Var(v) if !bound.contains(v.as_str()) => {
                    return Err(DatalogError::UnboundHeadVariable {
                        variable: v.clone(),
                        rule: rule.to_string(),
                    });
                }
                Term::Wildcard => {
                    return Err(DatalogError::WildcardInHead {
                        rule: rule.to_string(),
                    });
                }
                _ => {}
            }
        }
        if rule.is_fact() {
            let tuple: Vec<u32> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    _ => unreachable!("ground head checked above"),
                })
                .collect();
            let rel = self.by_name[&rule.head.relation];
            self.relations[rel.0].insert(tuple);
        } else {
            self.rules.push(rule);
        }
        Ok(())
    }

    /// Inserts one tuple into `relation`; returns `true` if it was new.
    ///
    /// # Errors
    ///
    /// Arity mismatch with an earlier use of the relation.
    pub fn add_fact(&mut self, relation: &str, tuple: &[u32]) -> Result<bool, DatalogError> {
        let rel = self.intern(relation, tuple.len())?;
        Ok(self.relations[rel.0].insert(tuple.to_vec()))
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The name of a relation.
    pub fn relation_name(&self, rel: RelId) -> &str {
        &self.relations[rel.0].name
    }

    /// Enumerates every relation as `(id, name)`, in interning order.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &str)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i), r.name.as_str()))
    }

    /// Iterates the tuples of a relation (insertion order).
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[u32]> {
        self.relations[rel.0].tuples.iter().map(Vec::as_slice)
    }

    /// Number of tuples in a relation.
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.0].tuples.len()
    }

    /// `true` if the whole database is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(|r| r.tuples.is_empty())
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId, tuple: &[u32]) -> bool {
        self.relations[rel.0].seen.contains(tuple)
    }

    /// Statistics of the last [`Engine::run`].
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    fn compile(&mut self) -> Vec<Plan> {
        let rules = std::mem::take(&mut self.rules);
        let mut plans = Vec::new();
        for rule in &rules {
            for d in 0..rule.body.len() {
                plans.push(self.compile_plan(rule, d));
            }
        }
        self.rules = rules;
        plans
    }

    fn compile_plan(&mut self, rule: &Rule, d: usize) -> Plan {
        let mut slots: HashMap<String, usize> = HashMap::new();
        // Slots are assigned in first-occurrence order over the evaluation
        // sequence, so "bound" = "already in the map".
        let compile_atom_ops = |atom: &Atom, slots: &mut HashMap<String, usize>| -> Vec<ColOp> {
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => ColOp::CheckConst(*c),
                    Term::Wildcard => ColOp::Ignore,
                    Term::Var(v) => {
                        if let Some(&s) = slots.get(v.as_str()) {
                            ColOp::CheckVar(s)
                        } else {
                            let s = slots.len();
                            slots.insert(v.clone(), s);
                            ColOp::BindVar(s)
                        }
                    }
                })
                .collect()
        };

        let delta_atom = &rule.body[d];
        let delta_ops = compile_atom_ops(delta_atom, &mut slots);
        let mut atoms = Vec::new();
        for (j, atom) in rule.body.iter().enumerate() {
            if j == d {
                continue;
            }
            // Determine bound columns first (without mutating slots), then
            // compile ops (which binds the new variables).
            let mut index_cols = Vec::new();
            let mut key_sources = Vec::new();
            for (c, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(k) => {
                        index_cols.push(c);
                        key_sources.push(KeySource::Const(*k));
                    }
                    Term::Var(v) => {
                        if let Some(&s) = slots.get(v.as_str()) {
                            index_cols.push(c);
                            key_sources.push(KeySource::Slot(s));
                        }
                    }
                    Term::Wildcard => {}
                }
            }
            let ops = compile_atom_ops(atom, &mut slots);
            let rel = self.by_name[&atom.relation];
            self.relations[rel.0].register_index(index_cols.clone());
            atoms.push(AtomPlan {
                rel,
                ops,
                index_cols,
                key_sources,
            });
        }
        let head_ops = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => HeadOp::Const(*c),
                Term::Var(v) => HeadOp::Slot(slots[v.as_str()]),
                Term::Wildcard => unreachable!("validated"),
            })
            .collect();
        Plan {
            delta: self.by_name[&delta_atom.relation],
            delta_ops,
            atoms,
            head_rel: self.by_name[&rule.head.relation],
            head_ops,
            n_slots: slots.len(),
        }
    }

    /// Runs the program to fixpoint and returns the statistics.
    pub fn run(&mut self) -> EvalStats {
        let plans = self.compile();
        let mut frontier: Vec<usize> = vec![0; self.relations.len()];
        let mut stats = EvalStats::default();
        loop {
            stats.rounds += 1;
            // Snapshot generation boundaries for this round.
            let limit: Vec<usize> = self.relations.iter().map(|r| r.tuples.len()).collect();
            let mut derived: Vec<(RelId, Vec<u32>)> = Vec::new();
            for plan in &plans {
                let lo = frontier[plan.delta.0];
                let hi = limit[plan.delta.0];
                for pos in lo..hi {
                    self.fire(plan, pos, &limit, &mut derived);
                }
            }
            stats.derivations += derived.len();
            frontier = limit;
            let mut any_new = false;
            for (rel, tuple) in derived {
                if self.relations[rel.0].insert(tuple) {
                    any_new = true;
                }
            }
            if !any_new {
                break;
            }
        }
        stats.tuples = self.relations.iter().map(|r| r.tuples.len()).sum();
        self.stats = stats;
        stats
    }

    fn fire(
        &self,
        plan: &Plan,
        delta_pos: usize,
        limit: &[usize],
        out: &mut Vec<(RelId, Vec<u32>)>,
    ) {
        let mut env = vec![0u32; plan.n_slots];
        let tuple = &self.relations[plan.delta.0].tuples[delta_pos];
        if !apply_ops(&plan.delta_ops, tuple, &mut env) {
            return;
        }
        self.join(plan, 0, limit, &mut env, out);
    }

    fn join(
        &self,
        plan: &Plan,
        depth: usize,
        limit: &[usize],
        env: &mut Vec<u32>,
        out: &mut Vec<(RelId, Vec<u32>)>,
    ) {
        if depth == plan.atoms.len() {
            let tuple: Vec<u32> = plan
                .head_ops
                .iter()
                .map(|op| match op {
                    HeadOp::Const(c) => *c,
                    HeadOp::Slot(s) => env[*s],
                })
                .collect();
            out.push((plan.head_rel, tuple));
            return;
        }
        let atom = &plan.atoms[depth];
        let relation = &self.relations[atom.rel.0];
        let bound = limit[atom.rel.0];
        if atom.index_cols.is_empty() {
            for pos in 0..bound {
                if apply_ops(&atom.ops, &relation.tuples[pos], env) {
                    self.join(plan, depth + 1, limit, env, out);
                }
            }
        } else {
            let key: Vec<u32> = atom
                .key_sources
                .iter()
                .map(|k| match k {
                    KeySource::Const(c) => *c,
                    KeySource::Slot(s) => env[*s],
                })
                .collect();
            let index = &relation.indices[&atom.index_cols];
            if let Some(positions) = index.get(&key) {
                for &pos in positions {
                    if pos >= bound {
                        break; // positions are appended in order
                    }
                    if apply_ops(&atom.ops, &relation.tuples[pos], env) {
                        self.join(plan, depth + 1, limit, env, out);
                    }
                }
            }
        }
    }
}

/// Matches a tuple against per-column ops, binding variables into `env`.
fn apply_ops(ops: &[ColOp], tuple: &[u32], env: &mut [u32]) -> bool {
    for (op, &value) in ops.iter().zip(tuple) {
        match op {
            ColOp::CheckConst(c) => {
                if *c != value {
                    return false;
                }
            }
            ColOp::CheckVar(s) => {
                if env[*s] != value {
                    return false;
                }
            }
            ColOp::BindVar(s) => env[*s] = value,
            ColOp::Ignore => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitive_closure() {
        let mut e = Engine::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(0, 1). edge(1, 2). edge(2, 3).",
        )
        .unwrap();
        e.run();
        let path = e.relation("path").unwrap();
        assert_eq!(e.len(path), 6);
        assert!(e.contains(path, &[0, 3]));
        assert!(!e.contains(path, &[3, 0]));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut e = Engine::parse(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(0, 1). edge(1, 0).",
        )
        .unwrap();
        let stats = e.run();
        let path = e.relation("path").unwrap();
        assert_eq!(e.len(path), 4);
        assert!(stats.rounds < 10);
    }

    #[test]
    fn constants_restrict_joins() {
        let mut e = Engine::parse(
            "odd_succ(Y) :- succ(1, Y).\n\
             succ(0, 1). succ(1, 2). succ(2, 3).",
        )
        .unwrap();
        e.run();
        let r = e.relation("odd_succ").unwrap();
        assert_eq!(e.tuples(r).collect::<Vec<_>>(), vec![&[2][..]]);
    }

    #[test]
    fn wildcards_project() {
        let mut e = Engine::parse(
            "has_edge(X) :- edge(X, _).\n\
             edge(5, 6). edge(5, 7). edge(8, 9).",
        )
        .unwrap();
        e.run();
        let r = e.relation("has_edge").unwrap();
        assert_eq!(e.len(r), 2);
    }

    #[test]
    fn repeated_variables_filter() {
        let mut e = Engine::parse(
            "selfloop(X) :- edge(X, X).\n\
             edge(1, 1). edge(1, 2). edge(3, 3).",
        )
        .unwrap();
        e.run();
        let r = e.relation("selfloop").unwrap();
        assert_eq!(e.len(r), 2);
        assert!(e.contains(r, &[1]));
        assert!(e.contains(r, &[3]));
    }

    #[test]
    fn unbound_head_var_rejected() {
        let err = Engine::parse("p(X, Y) :- q(X).\n").unwrap_err();
        assert!(matches!(err, DatalogError::UnboundHeadVariable { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Engine::parse("p(1, 2).\np(3).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn add_fact_dedups() {
        let mut e = Engine::new();
        assert!(e.add_fact("r", &[1, 2]).unwrap());
        assert!(!e.add_fact("r", &[1, 2]).unwrap());
        assert!(e.add_fact("r", &[1, 3]).unwrap());
        assert_eq!(e.len(e.relation("r").unwrap()), 2);
    }

    #[test]
    fn three_way_join_uses_indices() {
        // Same-generation: sg(X,Y) :- flat(X,Y). sg(X,Y) :- up(X,A), sg(A,B), down(B,Y).
        let mut e = Engine::parse(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, A), sg(A, B), down(B, Y).\n\
             up(1, 3). up(2, 4). flat(3, 4). down(4, 2). down(3, 1).",
        )
        .unwrap();
        e.run();
        let sg = e.relation("sg").unwrap();
        assert!(e.contains(sg, &[3, 4]));
        assert!(e.contains(sg, &[1, 2]));
    }

    #[test]
    fn zero_arity_relations_work() {
        let mut e = Engine::parse(
            "go() :- trigger(X).
             fired(X) :- go(), candidate(X).
             candidate(1). candidate(2).",
        )
        .unwrap();
        e.run();
        assert_eq!(e.len(e.relation("fired").unwrap()), 0, "no trigger yet");
        e.add_fact("trigger", &[9]).unwrap();
        e.run();
        assert_eq!(e.len(e.relation("fired").unwrap()), 2);
    }

    #[test]
    fn facts_added_between_runs_are_incorporated() {
        let mut e = Engine::parse("p(X) :- q(X).").unwrap();
        e.add_fact("q", &[1]).unwrap();
        e.run();
        assert_eq!(e.len(e.relation("p").unwrap()), 1);
        e.add_fact("q", &[2]).unwrap();
        e.run();
        assert_eq!(e.len(e.relation("p").unwrap()), 2);
    }

    #[test]
    fn head_constants_are_emitted() {
        let mut e = Engine::parse(
            "mark(7, X) :- q(X).
q(1).",
        )
        .unwrap();
        e.run();
        let r = e.relation("mark").unwrap();
        assert!(e.contains(r, &[7, 1]));
    }

    #[test]
    fn duplicate_rules_are_harmless() {
        let mut e = Engine::parse(
            "p(X) :- q(X).
p(X) :- q(X).
q(3).",
        )
        .unwrap();
        e.run();
        assert_eq!(e.len(e.relation("p").unwrap()), 1);
    }

    #[test]
    fn stats_are_populated() {
        let mut e = Engine::parse("p(X) :- q(X).\nq(1). q(2).").unwrap();
        let stats = e.run();
        assert!(stats.rounds >= 2);
        assert_eq!(stats.tuples, 4);
        assert!(stats.derivations >= 2);
    }
}
