//! Rule AST: terms, atoms, rules.

use std::fmt;

/// A term of an atom: a named variable, a constant, or a wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A named logic variable (scoped to one rule).
    Var(String),
    /// A `u32` constant (entity ids in the pointer-analysis encoding).
    Const(u32),
    /// An anonymous variable (`_`), allowed only in rule bodies.
    Wildcard,
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name) => f.write_str(name),
            Term::Const(c) => write!(f, "{c}"),
            Term::Wildcard => f.write_str("_"),
        }
    }
}

/// One atom `relation(term, …)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Convenience constructor.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// One rule `head :- body.` (a fact when the body is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The premises (all positive).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule { head, body }
    }

    /// Creates a ground fact.
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// `true` if the rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            f.write_str(" :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        f.write_str(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_syntax() {
        let r = Rule::new(
            Atom::new("pts", vec![Term::Var("Y".into()), Term::Var("H".into())]),
            vec![
                Atom::new("assign", vec![Term::Var("Z".into()), Term::Var("Y".into())]),
                Atom::new("pts", vec![Term::Var("Z".into()), Term::Var("H".into())]),
            ],
        );
        assert_eq!(r.to_string(), "pts(Y, H) :- assign(Z, Y), pts(Z, H).");
        let f = Rule::fact(Atom::new("edge", vec![Term::Const(1), Term::Const(2)]));
        assert_eq!(f.to_string(), "edge(1, 2).");
        assert!(f.is_fact());
    }

    #[test]
    fn wildcard_displays_as_underscore() {
        let a = Atom::new("reach", vec![Term::Wildcard]);
        assert_eq!(a.to_string(), "reach(_)");
    }
}
