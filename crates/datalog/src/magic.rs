//! The magic-sets transformation: demand-driven evaluation of bottom-up
//! Datalog.
//!
//! The paper's future-work section (§10) observes that its exhaustive
//! Datalog pointer analysis "can be converted to a demand-driven program
//! through the magic sets transformation" (Bancilhon et al., PODS 1986).
//! This module implements that transformation for the positive programs
//! this engine evaluates: given a query atom with some arguments bound to
//! constants, it produces a rewritten program whose bottom-up evaluation
//! derives only tuples relevant to the query, plus *magic* predicates that
//! propagate the demanded bindings.
//!
//! The binding-passing strategy (SIPS) greedily reorders each rule body
//! so that the next atom evaluated is the one with the most already-bound
//! arguments (EDB atoms preferred on ties): bindings flow into every atom
//! that can receive them, which keeps the demanded sets goal-directed.
//! (A naive left-to-right SIPS makes rules like Fig. 3's Param — where
//! the head variable only occurs in the *last* body atom — demand the
//! whole program.)
//!
//! ```
//! use ctxform_datalog::{magic_transform, Atom, Engine, Term};
//!
//! let rules = ctxform_datalog::parse_rules(
//!     "path(X, Y) :- edge(X, Y).\n\
//!      path(X, Z) :- edge(X, Y), path(Y, Z).",
//! )?;
//! // Demand only the paths starting at node 0.
//! let query = Atom::new("path", vec![Term::Const(0), Term::Var("Y".into())]);
//! let transformed = magic_transform(&rules, &query)?;
//! let mut engine = Engine::new();
//! for rule in transformed {
//!     engine.add_rule(rule)?;
//! }
//! for (a, b) in [(0, 1), (1, 2), (5, 6), (6, 7), (7, 5)] {
//!     engine.add_fact("edge", &[a, b])?;
//! }
//! engine.run();
//! let answers = engine.relation("path__bf").unwrap();
//! // Only the demanded region {0, 1, 2} is explored (paths 0→1, 0→2,
//! // 1→2); the 5-6-7 cycle is never touched.
//! assert_eq!(engine.len(answers), 3);
//! # Ok::<(), ctxform_datalog::DatalogError>(())
//! ```

use std::collections::{HashMap, HashSet, VecDeque};

use crate::error::DatalogError;
use crate::rule::{Atom, Rule, Term};

/// An adornment: one flag per argument position, `true` = bound.
type Adornment = Vec<bool>;

fn adornment_suffix(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

fn adorned_name(pred: &str, a: &Adornment) -> String {
    format!("{pred}__{}", adornment_suffix(a))
}

fn magic_name(pred: &str, a: &Adornment) -> String {
    format!("magic_{pred}__{}", adornment_suffix(a))
}

/// Applies the magic-sets transformation for `query` to `rules`.
///
/// Predicates with rules defining them are treated as derived (IDB) and
/// adorned; everything else is an input (EDB) relation and left
/// untouched. The answers to the query appear in the relation
/// `<pred>__<adornment>` (e.g. `path__bf`); the returned program includes
/// the magic seed fact derived from the query's constants.
///
/// # Errors
///
/// Returns an error if the query has no bound argument (the transformation
/// would degenerate to the exhaustive program) or refers to an EDB-only
/// predicate.
pub fn magic_transform(rules: &[Rule], query: &Atom) -> Result<Vec<Rule>, DatalogError> {
    let idb: HashSet<&str> = rules.iter().map(|r| r.head.relation.as_str()).collect();
    if !idb.contains(query.relation.as_str()) {
        return Err(DatalogError::UnknownRelation(format!(
            "{} (not a derived predicate)",
            query.relation
        )));
    }
    let query_adornment: Adornment = query
        .terms
        .iter()
        .map(|t| matches!(t, Term::Const(_)))
        .collect();
    if !query_adornment.iter().any(|&b| b) {
        return Err(DatalogError::Parse {
            offset: 0,
            message: "magic-sets query must bind at least one argument".into(),
        });
    }

    let rules_for: HashMap<&str, Vec<&Rule>> = {
        let mut m: HashMap<&str, Vec<&Rule>> = HashMap::new();
        for r in rules {
            m.entry(r.head.relation.as_str()).or_default().push(r);
        }
        m
    };

    let mut out = Vec::new();
    let mut done: HashSet<(String, String)> = HashSet::new();
    let mut work: VecDeque<(String, Adornment)> = VecDeque::new();
    work.push_back((query.relation.clone(), query_adornment.clone()));

    while let Some((pred, adornment)) = work.pop_front() {
        if !done.insert((pred.clone(), adornment_suffix(&adornment))) {
            continue;
        }
        for rule in rules_for.get(pred.as_str()).into_iter().flatten() {
            out.extend(adorn_rule(rule, &adornment, &idb, &mut work));
        }
    }

    // Seed: the magic fact carrying the query's constants.
    let seed_terms: Vec<Term> = query
        .terms
        .iter()
        .filter(|t| matches!(t, Term::Const(_)))
        .cloned()
        .collect();
    out.push(Rule::fact(Atom::new(
        magic_name(&query.relation, &query_adornment),
        seed_terms,
    )));
    Ok(out)
}

/// Adorns one rule for a head adornment, emitting the modified rule and
/// the magic rules for its derived body atoms, and queueing newly needed
/// (predicate, adornment) pairs.
fn adorn_rule(
    rule: &Rule,
    head_adornment: &Adornment,
    idb: &HashSet<&str>,
    work: &mut VecDeque<(String, Adornment)>,
) -> Vec<Rule> {
    let mut out = Vec::new();
    // Variables bound on entry: head variables in bound positions.
    let mut bound: HashSet<&str> = HashSet::new();
    for (term, &is_bound) in rule.head.terms.iter().zip(head_adornment) {
        if is_bound {
            if let Term::Var(v) = term {
                bound.insert(v);
            }
        }
    }
    // The magic guard atom: magic_p(bound head args).
    let magic_guard = Atom::new(
        magic_name(&rule.head.relation, head_adornment),
        rule.head
            .terms
            .iter()
            .zip(head_adornment)
            .filter(|&(_, &b)| b)
            .map(|(t, _)| t.clone())
            .collect(),
    );

    // Greedy SIPS: repeatedly pick the not-yet-placed atom with the most
    // bound arguments (EDB wins ties — cheap filters first), so bindings
    // propagate as far as possible.
    let mut remaining: Vec<&Atom> = rule.body.iter().collect();
    let mut ordered: Vec<&Atom> = Vec::new();
    let mut sips_bound: HashSet<&str> = bound.iter().copied().collect();
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .max_by_key(|(i, atom)| {
                let bound_args = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => sips_bound.contains(v.as_str()),
                        Term::Wildcard => false,
                    })
                    .count();
                let is_edb = !idb.contains(atom.relation.as_str());
                // Higher is better; negative index keeps the order stable.
                (bound_args, is_edb, std::cmp::Reverse(*i))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let atom = remaining.remove(best);
        for t in &atom.terms {
            if let Term::Var(v) = t {
                sips_bound.insert(v);
            }
        }
        ordered.push(atom);
    }

    let mut new_body: Vec<Atom> = vec![magic_guard.clone()];
    for atom in ordered {
        if idb.contains(atom.relation.as_str()) {
            // Derived atom: compute its adornment from what is bound now,
            // emit its magic rule, and queue it for adornment.
            let mut adornment: Adornment = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v.as_str()),
                    Term::Wildcard => false,
                })
                .collect();
            // Adornment widening: a fully-bound occurrence would key its
            // magic set on every column, and when those bindings come
            // from independent sources the magic relation degenerates to
            // their cross product (e.g. demanded-vars × demanded-heaps
            // for `pts__bb` — observed at ~10x the exhaustive fact count
            // on dense inputs). Freeing the last position keeps the
            // demand goal-directed on a prefix key; the rule body still
            // constrains the freed argument, so answers are unchanged —
            // only the demanded superset grows.
            if adornment.len() >= 2 && adornment.iter().all(|&b| b) {
                *adornment.last_mut().expect("arity >= 2") = false;
            }
            let magic_head = Atom::new(
                magic_name(&atom.relation, &adornment),
                atom.terms
                    .iter()
                    .zip(&adornment)
                    .filter(|&(_, &b)| b)
                    .map(|(t, _)| t.clone())
                    .collect(),
            );
            out.push(Rule::new(magic_head, new_body.clone()));
            work.push_back((atom.relation.clone(), adornment.clone()));
            new_body.push(Atom::new(
                adorned_name(&atom.relation, &adornment),
                atom.terms.clone(),
            ));
        } else {
            new_body.push(atom.clone());
        }
        for t in &atom.terms {
            if let Term::Var(v) = t {
                bound.insert(v);
            }
        }
    }
    let new_head = Atom::new(
        adorned_name(&rule.head.relation, head_adornment),
        rule.head.terms.clone(),
    );
    out.push(Rule::new(new_head, new_body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::parser::parse_program;

    fn run_transformed(program: &str, query: &Atom, facts: &[(&str, Vec<u32>)]) -> Engine {
        let rules = parse_program(program).unwrap();
        let transformed = magic_transform(&rules, query).unwrap();
        let mut engine = Engine::new();
        for rule in transformed {
            engine.add_rule(rule).unwrap();
        }
        for (rel, tuple) in facts {
            engine.add_fact(rel, tuple).unwrap();
        }
        engine.run();
        engine
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).";

    fn chain_facts(n: u32) -> Vec<(&'static str, Vec<u32>)> {
        (0..n).map(|i| ("edge", vec![i, i + 1])).collect()
    }

    #[test]
    fn bound_free_query_restricts_derivation() {
        let query = Atom::new("path", vec![Term::Const(7), Term::Var("Y".into())]);
        let mut facts = chain_facts(10);
        facts.extend([("edge", vec![100, 101]), ("edge", vec![101, 102])]);
        let engine = run_transformed(TC, &query, &facts);
        let answers = engine.relation("path__bf").unwrap();
        // The magic set demands 7 and, recursively, everything 7 reaches
        // (8, 9): paths from {7, 8, 9} = 3 + 2 + 1.
        assert_eq!(engine.len(answers), 6);
        assert!(engine.contains(answers, &[7, 10]));
        // The disconnected 100-chain was never explored.
        assert!(engine.tuples(answers).all(|t| t[0] < 100 && t[1] < 100));
    }

    #[test]
    fn answers_match_exhaustive_evaluation() {
        let query = Atom::new("path", vec![Term::Const(2), Term::Var("Y".into())]);
        let engine = run_transformed(TC, &query, &chain_facts(8));
        let answers = engine.relation("path__bf").unwrap();
        // The *query answers* are the tuples matching the query constant.
        let demand: HashSet<Vec<u32>> = engine
            .tuples(answers)
            .filter(|t| t[0] == 2)
            .map(|t| t.to_vec())
            .collect();

        let mut full = Engine::parse(TC).unwrap();
        for (rel, tuple) in chain_facts(8) {
            full.add_fact(rel, &tuple).unwrap();
        }
        full.run();
        let path = full.relation("path").unwrap();
        let exhaustive: HashSet<Vec<u32>> = full
            .tuples(path)
            .filter(|t| t[0] == 2)
            .map(|t| t.to_vec())
            .collect();
        assert_eq!(demand, exhaustive);
        // And the demand-driven run derived fewer path tuples in total
        // (nothing about 0 or 1 is computed).
        assert!(engine.len(answers) < full.len(path));
    }

    #[test]
    fn bound_bound_query_is_a_membership_test() {
        let query = Atom::new("path", vec![Term::Const(0), Term::Const(3)]);
        let engine = run_transformed(TC, &query, &chain_facts(5));
        let answers = engine.relation("path__bb").unwrap();
        assert!(engine.contains(answers, &[0, 3]));
        // Every derived answer targets the demanded endpoint 3.
        assert!(engine.tuples(answers).all(|t| t[1] == 3));
    }

    #[test]
    fn same_generation_uses_multiple_adornments() {
        // sg demands both bf (from the query) and recursive patterns.
        let program = "sg(X, Y) :- flat(X, Y).\n\
                       sg(X, Y) :- up(X, A), sg(A, B), down(B, Y).";
        let query = Atom::new("sg", vec![Term::Const(1), Term::Var("Y".into())]);
        let engine = run_transformed(
            program,
            &query,
            &[
                ("up", vec![1, 3]),
                ("up", vec![2, 4]),
                ("flat", vec![3, 4]),
                ("down", vec![4, 2]),
                ("down", vec![3, 1]),
            ],
        );
        let answers = engine.relation("sg__bf").unwrap();
        assert!(engine.contains(answers, &[1, 2]));
    }

    #[test]
    fn unbound_queries_are_rejected() {
        let rules = parse_program(TC).unwrap();
        let query = Atom::new("path", vec![Term::Var("X".into()), Term::Var("Y".into())]);
        assert!(magic_transform(&rules, &query).is_err());
    }

    #[test]
    fn edb_queries_are_rejected() {
        let rules = parse_program(TC).unwrap();
        let query = Atom::new("edge", vec![Term::Const(0), Term::Var("Y".into())]);
        assert!(matches!(
            magic_transform(&rules, &query),
            Err(DatalogError::UnknownRelation(_))
        ));
    }
}
