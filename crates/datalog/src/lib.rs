//! A small bottom-up Datalog engine.
//!
//! The paper evaluates its parameterized pointer-analysis rules by
//! instantiating them into *plain Datalog* and running them on a
//! Datalog-to-native-code compiler (§7–§8). This crate is the generic half
//! of our reproduction of that pipeline: positive Datalog over `u32`
//! constants, evaluated bottom-up with semi-naive iteration and
//! per-rule-chosen hash indices. The `ctxform` crate uses it for the
//! context-insensitive baseline analysis and as a cross-check oracle for
//! its hand-specialized solver (the analogue of the paper's compiled
//! back-end).
//!
//! ```
//! use ctxform_datalog::Engine;
//!
//! let mut engine = Engine::parse(
//!     "reach(Y) :- edge(X, Y), reach(X).\n\
//!      reach(0).\n\
//!      edge(0, 1). edge(1, 2). edge(2, 1). edge(3, 4).",
//! )?;
//! engine.run();
//! let reach = engine.relation("reach").unwrap();
//! assert_eq!(engine.tuples(reach).count(), 3); // {0, 1, 2}
//! # Ok::<(), ctxform_datalog::DatalogError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod error;
mod magic;
mod parser;
mod rule;

pub use engine::{Engine, EvalStats, RelId};
pub use error::DatalogError;
pub use magic::magic_transform;
pub use rule::{Atom, Rule, Term};

/// Parses a textual program into rules without building an engine (useful
/// as input to [`magic_transform`]).
///
/// # Errors
///
/// [`DatalogError::Parse`] on malformed input.
pub fn parse_rules(source: &str) -> Result<Vec<Rule>, DatalogError> {
    parser::parse_program(source)
}
