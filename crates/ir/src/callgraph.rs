//! Call-graph extraction and SCC condensation.
//!
//! The bottom-up summary solver (`SolveMode::SummaryScc`) schedules
//! evaluation over the condensation of the static call graph: methods
//! that call each other (mutual recursion) collapse into one strongly
//! connected component, and components are numbered in **reverse
//! topological order** — every callee component gets a smaller id than
//! its callers, so solving components in ascending id order visits
//! callees first and their return summaries are complete before any
//! caller applies them.
//!
//! The graph is a CHA over-approximation of the runtime call graph:
//! `static_invoke(I, Q, P)` contributes the edge `P → Q`, and
//! `virtual_invoke(I, Z, S)` contributes an edge from the invocation's
//! containing method to **every** method implementing signature `S`
//! (receiver types are not consulted). Over-approximation is safe here —
//! the condensation only drives *scheduling*; the solver's rules still
//! compute the exact least model regardless of component placement.

use ctxform_hash::{FxHashMap, FxHashSet};

use crate::ids::{MSig, Method};
use crate::program::Program;

/// An SCC partition of a digraph on `0..node_count` nodes.
#[derive(Debug, Clone)]
pub struct SccPartition {
    /// Component id per node, in `0..comp_count`. Ids are assigned in
    /// Tarjan pop order, which is reverse topological: for every edge
    /// `u → v` with `comp_of[u] != comp_of[v]`, `comp_of[v] < comp_of[u]`.
    pub comp_of: Vec<u32>,
    /// Number of components.
    pub comp_count: usize,
}

/// Tarjan's algorithm (iterative), returning components numbered in
/// reverse topological order. Both endpoints of every edge must be in
/// `0..n`; out-of-range endpoints panic (via indexing).
pub fn scc_partition(n: usize, edges: &[(u32, u32)]) -> SccPartition {
    // CSR adjacency.
    let mut degree = vec![0u32; n];
    for &(u, _) in edges {
        degree[u as usize] += 1;
    }
    let mut starts = vec![0usize; n + 1];
    for i in 0..n {
        starts[i + 1] = starts[i] + degree[i] as usize;
    }
    let mut cursor = starts.clone();
    let mut adj = vec![0u32; edges.len()];
    for &(u, v) in edges {
        adj[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
    }

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNVISITED; n];
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    // Explicit DFS frames: (node, next out-edge offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, starts[root as usize]));
        while let Some(&(v, cur)) = frames.last() {
            let vi = v as usize;
            if cur < starts[vi + 1] {
                frames.last_mut().expect("frame just read").1 = cur + 1;
                let w = adj[cur];
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    frames.push((w, starts[wi]));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let pi = p as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }

    SccPartition {
        comp_of,
        comp_count: comp_count as usize,
    }
}

/// The condensed call graph of a [`Program`].
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component id per method (indexed by `Method::index()`), numbered
    /// in reverse topological order: callees before callers.
    pub comp_of: Vec<u32>,
    /// Number of components.
    pub comp_count: usize,
    /// Number of methods per component.
    pub comp_sizes: Vec<u32>,
    /// Bottom-up level per component: `0` for components with no
    /// cross-component callees, otherwise `1 + max(level of callee
    /// components)`. Components on the same level are independent of
    /// each other's callees-in-flight and may be solved concurrently.
    pub levels: Vec<u32>,
    /// Maximum entry of `levels` (`0` for an empty program).
    pub max_level: u32,
}

/// Extracts CHA call edges and condenses the call graph into SCCs.
pub fn condense(program: &Program) -> Condensation {
    let n = program.method_count();
    let f = &program.facts;

    // Methods implementing each signature (virtual-dispatch targets,
    // receiver type ignored — a deliberate over-approximation).
    let mut by_sig: FxHashMap<MSig, Vec<Method>> = FxHashMap::default();
    for &(q, _t, s) in &f.implements {
        by_sig.entry(s).or_default().push(q);
    }

    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut push = |edges: &mut Vec<(u32, u32)>, p: Method, q: Method| {
        let e = (p.0, q.0);
        if e.0 != e.1 && seen.insert(e) {
            edges.push(e);
        }
    };
    for &(_i, q, p) in &f.static_invoke {
        push(&mut edges, p, q);
    }
    for &(i, _z, s) in &f.virtual_invoke {
        let p = program.inv_method[i.index()];
        if let Some(targets) = by_sig.get(&s) {
            for &q in targets {
                push(&mut edges, p, q);
            }
        }
    }

    let part = scc_partition(n, &edges);
    let mut comp_sizes = vec![0u32; part.comp_count];
    for &c in &part.comp_of {
        comp_sizes[c as usize] += 1;
    }

    // Bottom-up levels. Reverse-topological numbering guarantees that
    // for a cross edge p → q, comp_of[q] < comp_of[p]; sorting cross
    // edges by source component and scanning ascending therefore sees
    // every callee component's level finalized before it is read.
    let mut cross: Vec<(u32, u32)> = edges
        .iter()
        .map(|&(u, v)| (part.comp_of[u as usize], part.comp_of[v as usize]))
        .filter(|&(cu, cv)| cu != cv)
        .collect();
    cross.sort_unstable();
    cross.dedup();
    let mut levels = vec![0u32; part.comp_count];
    for &(cu, cv) in &cross {
        debug_assert!(cv < cu, "condensation edge violates reverse-topo order");
        levels[cu as usize] = levels[cu as usize].max(levels[cv as usize] + 1);
    }
    let max_level = levels.iter().copied().max().unwrap_or(0);

    Condensation {
        comp_of: part.comp_of,
        comp_count: part.comp_count,
        comp_sizes,
        levels,
        max_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn empty_graph_has_no_components() {
        let part = scc_partition(0, &[]);
        assert_eq!(part.comp_count, 0);
        assert!(part.comp_of.is_empty());
    }

    #[test]
    fn chain_is_reverse_topological() {
        // 0 → 1 → 2: every node its own SCC, callee ids smaller.
        let part = scc_partition(3, &[(0, 1), (1, 2)]);
        assert_eq!(part.comp_count, 3);
        assert!(part.comp_of[2] < part.comp_of[1]);
        assert!(part.comp_of[1] < part.comp_of[0]);
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        // 0 → 1 → 2 → 0 plus a sink 2 → 3.
        let part = scc_partition(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(part.comp_count, 2);
        assert_eq!(part.comp_of[0], part.comp_of[1]);
        assert_eq!(part.comp_of[1], part.comp_of[2]);
        assert!(part.comp_of[3] < part.comp_of[0]);
    }

    #[test]
    fn self_loops_and_duplicate_edges_are_harmless() {
        let part = scc_partition(2, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(part.comp_count, 2);
        assert!(part.comp_of[1] < part.comp_of[0]);
    }

    #[test]
    fn condensation_levels_count_callee_depth() {
        // main --static--> a --static--> b, plus mutual recursion c <-> d
        // called from main.
        let mut b = ProgramBuilder::new();
        let t = b.class("T", None);
        let main = b.method_in("main", t, &[]);
        let a = b.method_in("a", t, &[]);
        let bb = b.method_in("b", t, &[]);
        let c = b.method_in("c", t, &[]);
        let d = b.method_in("d", t, &[]);
        b.static_call("i1", main, a, &[], None);
        b.static_call("i2", a, bb, &[], None);
        b.static_call("i3", main, c, &[], None);
        b.static_call("i4", c, d, &[], None);
        b.static_call("i5", d, c, &[], None);
        let program = b.finish_unchecked();
        let cond = condense(&program);
        let comp = |m: Method| cond.comp_of[m.index()] as usize;
        assert_eq!(cond.comp_of.len(), program.method_count());
        assert_eq!(comp(c), comp(d), "mutual recursion shares a component");
        assert_ne!(comp(main), comp(a));
        assert_eq!(cond.comp_sizes[comp(c)], 2);
        assert_eq!(cond.levels[comp(bb)], 0);
        assert_eq!(cond.levels[comp(a)], 1);
        assert_eq!(cond.levels[comp(c)], 0);
        assert_eq!(cond.levels[comp(main)], 2);
        assert_eq!(cond.max_level, 2);
    }
}
