//! Error type for program construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::EntityKind;

/// Errors produced while building, validating, or parsing a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An id referenced an entity that does not exist.
    UnknownEntity {
        /// Kind of the dangling reference.
        kind: EntityKind,
        /// Raw index that was out of range.
        index: u32,
        /// Relation or table in which the dangling id appeared.
        context: String,
    },
    /// A heap allocation site has zero or more than one declared type.
    AmbiguousHeapType {
        /// Offending allocation-site index.
        heap: u32,
        /// Number of `heap_type` tuples found for it.
        count: usize,
    },
    /// Two `implements` tuples dispatch the same (type, signature) pair to
    /// different methods.
    AmbiguousDispatch {
        /// Receiver type index.
        ty: u32,
        /// Method-signature index.
        msig: u32,
    },
    /// A method has two formals (or two `this` variables) in one slot.
    DuplicateBinding {
        /// Method index.
        method: u32,
        /// Human-readable description of the duplicated slot.
        slot: String,
    },
    /// A variable-to-method ownership constraint was violated
    /// (e.g. a formal of `P` that is not a variable of `P`).
    ForeignVariable {
        /// Variable index.
        var: u32,
        /// Method the relation claims the variable belongs to.
        claimed: u32,
        /// Method the variable actually belongs to.
        actual: u32,
        /// Relation in which the mismatch appeared.
        context: String,
    },
    /// The program declares no entry point.
    NoEntryPoint,
    /// The class hierarchy contains a cycle through `extends`.
    CyclicHierarchy {
        /// A type on the cycle.
        ty: u32,
    },
    /// A fact-file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownEntity {
                kind,
                index,
                context,
            } => {
                write!(f, "unknown {kind} id {index} referenced in {context}")
            }
            IrError::AmbiguousHeapType { heap, count } => {
                write!(
                    f,
                    "allocation site h{heap} has {count} declared types (expected 1)"
                )
            }
            IrError::AmbiguousDispatch { ty, msig } => {
                write!(
                    f,
                    "type t{ty} dispatches signature s{msig} to more than one method"
                )
            }
            IrError::DuplicateBinding { method, slot } => {
                write!(f, "method m{method} has duplicate binding for {slot}")
            }
            IrError::ForeignVariable {
                var,
                claimed,
                actual,
                context,
            } => write!(
                f,
                "variable v{var} used in {context} of method m{claimed} but belongs to m{actual}"
            ),
            IrError::NoEntryPoint => write!(f, "program declares no entry point"),
            IrError::CyclicHierarchy { ty } => {
                write!(f, "class hierarchy has a cycle through t{ty}")
            }
            IrError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = IrError::UnknownEntity {
            kind: EntityKind::Var,
            index: 9,
            context: "assign".to_owned(),
        };
        assert_eq!(e.to_string(), "unknown var id 9 referenced in assign");
        let e = IrError::NoEntryPoint;
        assert_eq!(e.to_string(), "program declares no entry point");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(IrError::NoEntryPoint);
    }
}
