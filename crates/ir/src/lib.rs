//! Program representation for the `ctxform` pointer analysis.
//!
//! This crate defines the *input side* of the analysis described in
//! "Context Transformations for Pointer Analysis" (Thiessen & Lhoták,
//! PLDI 2017): densely-numbered entity identifiers ([`Var`], [`Heap`],
//! [`Inv`], [`Method`], [`Field`], [`Type`], [`MSig`]), the thirteen input
//! relations of the paper's Figure 3 ([`Facts`]), a [`Program`] container
//! that couples the relations with entity metadata and validates their
//! integrity, a fluent [`ProgramBuilder`], the precomputed join indices the
//! solver needs ([`ProgramIndex`]), and a line-oriented text format for fact
//! files ([`text`]).
//!
//! The paper extracts these relations from Java bytecode with Soot; here any
//! producer works — the bundled MiniJava frontend (`ctxform-minijava`), the
//! synthetic workload generator (`ctxform-synth`), the text reader, or the
//! builder directly:
//!
//! ```
//! use ctxform_ir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let object = b.class("Object", None);
//! let main = b.method_in("Main.main", object, &[]);
//! b.entry_point(main);
//! let x = b.var("x", main);
//! let h = b.alloc("new Object", object, x, main);
//! let program = b.finish()?;
//! assert_eq!(program.facts.assign_new, vec![(h, x, main)]);
//! # Ok::<(), ctxform_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod callgraph;
mod delta;
mod error;
mod facts;
mod ids;
mod index;
mod program;
pub mod text;

pub use builder::ProgramBuilder;
pub use callgraph::{condense, scc_partition, Condensation, SccPartition};
pub use delta::{ProgramDelta, ProgramDiff, ProgramRetraction};
pub use error::IrError;
pub use facts::Facts;
pub use ids::{EntityKind, Field, Heap, Inv, MSig, Method, Type, Var};
pub use index::ProgramIndex;
pub use program::{Program, ProgramStats};
