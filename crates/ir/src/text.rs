//! Line-oriented text format for programs and fact files.
//!
//! The paper's toolchain exchanges relations as files produced by a Soot
//! fact generator; this module plays the same role for `ctxform`. The
//! format declares entities first (declaration order defines the dense
//! ids), then lists the Figure 3 tuples:
//!
//! ```text
//! # ctxform fact file
//! type Object -
//! type T 0
//! field f
//! msig get/0
//! method 1 T.get
//! var 0 this
//! heap 0 main/new#0
//! inv 0 call#0
//! entry 0
//! fact this_var 0 0
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Entity names may
//! contain spaces (the name is always the final, greedy component).

use crate::error::IrError;
use crate::ids::{Field, Heap, Inv, MSig, Method, Type, Var};
use crate::program::Program;

/// Serializes `program` into the text format.
///
/// The output round-trips through [`parse`] to an equal [`Program`].
pub fn emit(program: &Program) -> String {
    let mut out = String::new();
    out.push_str("# ctxform fact file\n");
    for (i, name) in program.type_names.iter().enumerate() {
        match program.supertype[i] {
            Some(s) => out.push_str(&format!("type {} {}\n", s.index(), name)),
            None => out.push_str(&format!("type - {name}\n")),
        }
    }
    for name in &program.field_names {
        out.push_str(&format!("field {name}\n"));
    }
    for name in &program.msig_names {
        out.push_str(&format!("msig {name}\n"));
    }
    for (i, name) in program.method_names.iter().enumerate() {
        out.push_str(&format!(
            "method {} {}\n",
            program.method_class[i].index(),
            name
        ));
    }
    for (i, name) in program.var_names.iter().enumerate() {
        out.push_str(&format!("var {} {}\n", program.var_method[i].index(), name));
    }
    for (i, name) in program.heap_names.iter().enumerate() {
        out.push_str(&format!(
            "heap {} {}\n",
            program.heap_method[i].index(),
            name
        ));
    }
    for (i, name) in program.inv_names.iter().enumerate() {
        out.push_str(&format!("inv {} {}\n", program.inv_method[i].index(), name));
    }
    for m in &program.entry_points {
        out.push_str(&format!("entry {}\n", m.index()));
    }
    let f = &program.facts;
    for &(z, i, o) in &f.actual {
        out.push_str(&format!("fact actual {} {} {}\n", z.0, i.0, o));
    }
    for &(z, y) in &f.assign {
        out.push_str(&format!("fact assign {} {}\n", z.0, y.0));
    }
    for &(h, y, p) in &f.assign_new {
        out.push_str(&format!("fact assign_new {} {} {}\n", h.0, y.0, p.0));
    }
    for &(i, y) in &f.assign_return {
        out.push_str(&format!("fact assign_return {} {}\n", i.0, y.0));
    }
    for &(y, p, o) in &f.formal {
        out.push_str(&format!("fact formal {} {} {}\n", y.0, p.0, o));
    }
    for &(h, t) in &f.heap_type {
        out.push_str(&format!("fact heap_type {} {}\n", h.0, t.0));
    }
    for &(q, t, s) in &f.implements {
        out.push_str(&format!("fact implements {} {} {}\n", q.0, t.0, s.0));
    }
    for &(y, fld, z) in &f.load {
        out.push_str(&format!("fact load {} {} {}\n", y.0, fld.0, z.0));
    }
    for &(z, p) in &f.ret {
        out.push_str(&format!("fact return {} {}\n", z.0, p.0));
    }
    for &(i, q, p) in &f.static_invoke {
        out.push_str(&format!("fact static_invoke {} {} {}\n", i.0, q.0, p.0));
    }
    for &(x, fld, z) in &f.store {
        out.push_str(&format!("fact store {} {} {}\n", x.0, fld.0, z.0));
    }
    for &(x, fld) in &f.static_store {
        out.push_str(&format!("fact static_store {} {}\n", x.0, fld.0));
    }
    for &(fld, z) in &f.static_load {
        out.push_str(&format!("fact static_load {} {}\n", fld.0, z.0));
    }
    for &(y, q) in &f.this_var {
        out.push_str(&format!("fact this_var {} {}\n", y.0, q.0));
    }
    for &(i, z, s) in &f.virtual_invoke {
        out.push_str(&format!("fact virtual_invoke {} {} {}\n", i.0, z.0, s.0));
    }
    out
}

/// Parses the text format back into a validated [`Program`].
///
/// # Errors
///
/// Returns [`IrError::Parse`] for malformed lines and any validation error
/// for semantically broken programs.
pub fn parse(input: &str) -> Result<Program, IrError> {
    let mut program = Program::default();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parse_line(&mut program, line, lineno + 1)?;
    }
    program.validate()?;
    Ok(program)
}

fn parse_line(program: &mut Program, line: &str, lineno: usize) -> Result<(), IrError> {
    let err = |message: String| IrError::Parse {
        line: lineno,
        message,
    };
    let (keyword, rest) = line
        .split_once(' ')
        .ok_or_else(|| err(format!("expected arguments after `{line}`")))?;
    match keyword {
        "type" => {
            let (sup, name) = split_head(rest, lineno)?;
            let supertype = if sup == "-" {
                None
            } else {
                Some(Type(parse_u32(sup, lineno)?))
            };
            program.type_names.push(name.to_owned());
            program.supertype.push(supertype);
        }
        "field" => program.field_names.push(rest.to_owned()),
        "msig" => program.msig_names.push(rest.to_owned()),
        "method" => {
            let (class, name) = split_head(rest, lineno)?;
            program.method_class.push(Type(parse_u32(class, lineno)?));
            program.method_names.push(name.to_owned());
        }
        "var" => {
            let (m, name) = split_head(rest, lineno)?;
            program.var_method.push(Method(parse_u32(m, lineno)?));
            program.var_names.push(name.to_owned());
        }
        "heap" => {
            let (m, name) = split_head(rest, lineno)?;
            program.heap_method.push(Method(parse_u32(m, lineno)?));
            program.heap_names.push(name.to_owned());
        }
        "inv" => {
            let (m, name) = split_head(rest, lineno)?;
            program.inv_method.push(Method(parse_u32(m, lineno)?));
            program.inv_names.push(name.to_owned());
        }
        "entry" => program.entry_points.push(Method(parse_u32(rest, lineno)?)),
        "fact" => parse_fact(program, rest, lineno)?,
        other => return Err(err(format!("unknown keyword `{other}`"))),
    }
    Ok(())
}

fn parse_fact(program: &mut Program, rest: &str, lineno: usize) -> Result<(), IrError> {
    let mut parts = rest.split_whitespace();
    let name = parts.next().ok_or_else(|| IrError::Parse {
        line: lineno,
        message: "missing relation name".into(),
    })?;
    let args: Vec<u32> = parts
        .map(|p| parse_u32(p, lineno))
        .collect::<Result<_, _>>()?;
    let arity_err = |want: usize| IrError::Parse {
        line: lineno,
        message: format!(
            "relation `{name}` expects {want} arguments, got {}",
            args.len()
        ),
    };
    let f = &mut program.facts;
    match name {
        "actual" => {
            let [z, i, o] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.actual.push((Var(z), Inv(i), o));
        }
        "assign" => {
            let [z, y] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.assign.push((Var(z), Var(y)));
        }
        "assign_new" => {
            let [h, y, p] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.assign_new.push((Heap(h), Var(y), Method(p)));
        }
        "assign_return" => {
            let [i, y] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.assign_return.push((Inv(i), Var(y)));
        }
        "formal" => {
            let [y, p, o] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.formal.push((Var(y), Method(p), o));
        }
        "heap_type" => {
            let [h, t] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.heap_type.push((Heap(h), Type(t)));
        }
        "implements" => {
            let [q, t, s] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.implements.push((Method(q), Type(t), MSig(s)));
        }
        "load" => {
            let [y, fld, z] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.load.push((Var(y), Field(fld), Var(z)));
        }
        "return" => {
            let [z, p] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.ret.push((Var(z), Method(p)));
        }
        "static_invoke" => {
            let [i, q, p] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.static_invoke.push((Inv(i), Method(q), Method(p)));
        }
        "store" => {
            let [x, fld, z] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.store.push((Var(x), Field(fld), Var(z)));
        }
        "static_store" => {
            let [x, fld] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.static_store.push((Var(x), Field(fld)));
        }
        "static_load" => {
            let [fld, z] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.static_load.push((Field(fld), Var(z)));
        }
        "this_var" => {
            let [y, q] = take2(&args).ok_or_else(|| arity_err(2))?;
            f.this_var.push((Var(y), Method(q)));
        }
        "virtual_invoke" => {
            let [i, z, s] = take3(&args).ok_or_else(|| arity_err(3))?;
            f.virtual_invoke.push((Inv(i), Var(z), MSig(s)));
        }
        other => {
            return Err(IrError::Parse {
                line: lineno,
                message: format!("unknown relation `{other}`"),
            })
        }
    }
    Ok(())
}

fn split_head(rest: &str, lineno: usize) -> Result<(&str, &str), IrError> {
    rest.split_once(' ').ok_or_else(|| IrError::Parse {
        line: lineno,
        message: format!("expected `<head> <name>` in `{rest}`"),
    })
}

fn parse_u32(s: &str, lineno: usize) -> Result<u32, IrError> {
    s.parse::<u32>().map_err(|_| IrError::Parse {
        line: lineno,
        message: format!("expected a number, found `{s}`"),
    })
}

fn take2(args: &[u32]) -> Option<[u32; 2]> {
    <[u32; 2]>::try_from(args).ok()
}

fn take3(args: &[u32]) -> Option<[u32; 3]> {
    <[u32; 3]>::try_from(args).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let t = b.class("T", Some(object));
        let get = b.method_in("T.get", t, &[]);
        let this = b.this("this", get);
        let fld = b.field("f");
        let out = b.var("out", get);
        b.load(this, fld, out);
        b.ret(out, get);
        let s = b.msig("get/0");
        b.implement(get, t, s);
        let main = b.method_in("Main.main", t, &[]);
        b.entry_point(main);
        let x = b.var("box x", main);
        let y = b.var("y", main);
        b.alloc("main/new#0", t, x, main);
        b.alloc("main/new#1", object, y, main);
        b.store(y, fld, x);
        b.virtual_call("main/get#0", main, x, s, &[], Some(y));
        b.finish().expect("valid")
    }

    #[test]
    fn emit_parse_round_trips() {
        let p = sample();
        let text = emit(&p);
        let q = parse(&text).expect("parses");
        assert_eq!(p, q);
    }

    #[test]
    fn names_may_contain_spaces() {
        let p = sample();
        let q = parse(&emit(&p)).expect("parses");
        assert_eq!(
            q.var_names[q.var_names.iter().position(|n| n == "box x").unwrap()],
            "box x"
        );
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p = sample();
        let text = format!("# header\n\n{}\n# trailer\n", emit(&p));
        assert_eq!(parse(&text).expect("parses"), p);
    }

    #[test]
    fn unknown_keyword_is_a_parse_error() {
        let err = parse("frobnicate 1 2").unwrap_err();
        assert!(matches!(err, IrError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_arity_is_a_parse_error() {
        let err = parse("fact assign 1").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
        assert!(err.to_string().contains("expects 2 arguments"));
    }

    #[test]
    fn invalid_semantics_fail_validation() {
        // A heap with no declared type.
        let text =
            "type - Object\nmethod 0 main\nentry 0\nvar 0 x\nheap 0 site\nfact assign_new 0 0 0\n";
        assert!(matches!(
            parse(text),
            Err(IrError::AmbiguousHeapType { .. })
        ));
    }
}
