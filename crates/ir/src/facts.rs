//! The thirteen input relations of the paper's Figure 3.
//!
//! Tuple orders follow the paper exactly. In comments, the exemplary Java
//! statement for each relation uses the same variable letters as Figure 3.

use crate::ids::{Field, Heap, Inv, MSig, Method, Type, Var};

/// Input relations describing the program under analysis (Figure 3).
///
/// These are *extensional* relations: the frontend fills them in and the
/// analysis only reads them. All derived information (points-to sets, the
/// call graph, reachability) lives in the solver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Facts {
    /// `actual(Z, I, O)`: variable `Z` is the `O`-th actual argument of
    /// invocation `I` (0-based).
    pub actual: Vec<(Var, Inv, u32)>,
    /// `assign(Z, Y)`: statement `Y = Z;` (data flows from `Z` to `Y`).
    pub assign: Vec<(Var, Var)>,
    /// `assign_new(H, Y, P)`: statement `Y = new T(); // H` inside method
    /// `P`.
    pub assign_new: Vec<(Heap, Var, Method)>,
    /// `assign_return(I, Y)`: the return value of invocation `I` is assigned
    /// to `Y`.
    pub assign_return: Vec<(Inv, Var)>,
    /// `formal(Y, P, O)`: variable `Y` is the `O`-th formal parameter of
    /// method `P` (0-based).
    pub formal: Vec<(Var, Method, u32)>,
    /// `heap_type(H, T)`: objects allocated at `H` have class type `T`.
    pub heap_type: Vec<(Heap, Type)>,
    /// `implements(Q, T, S)`: invoking signature `S` on a receiver of type
    /// `T` dispatches to method `Q`.
    pub implements: Vec<(Method, Type, MSig)>,
    /// `load(Y, F, Z)`: statement `Z = Y.F;` (`Y` is the base).
    pub load: Vec<(Var, Field, Var)>,
    /// `return(Z, P)`: variable `Z` is a return value of method `P`.
    pub ret: Vec<(Var, Method)>,
    /// `static_invoke(I, Q, P)`: invocation `I` inside method `P` statically
    /// calls method `Q`.
    pub static_invoke: Vec<(Inv, Method, Method)>,
    /// `store(X, F, Z)`: statement `Z.F = X;` (`X` is the stored value, `Z`
    /// the base — argument order as in Figure 3's Store rule).
    pub store: Vec<(Var, Field, Var)>,
    /// `static_store(X, F)`: statement `C.F = X;` for a static field `F`.
    ///
    /// Static fields are not part of the paper's Fig. 3 presentation
    /// (which "excludes static fields … due to space constraints") but are
    /// present in its evaluated implementation; see the SStore/SLoad rules
    /// in `ctxform`.
    pub static_store: Vec<(Var, Field)>,
    /// `static_load(F, Z)`: statement `Z = C.F;` for a static field `F`.
    pub static_load: Vec<(Field, Var)>,
    /// `this_var(Y, Q)`: variable `Y` is the `this` variable of method `Q`.
    pub this_var: Vec<(Var, Method)>,
    /// `virtual_invoke(I, Z, S)`: invocation `I` calls signature `S` with
    /// receiver variable `Z`.
    pub virtual_invoke: Vec<(Inv, Var, MSig)>,
}

impl Facts {
    /// Creates an empty fact set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of input tuples across all thirteen relations.
    ///
    /// ```
    /// let facts = ctxform_ir::Facts::new();
    /// assert_eq!(facts.len(), 0);
    /// ```
    pub fn len(&self) -> usize {
        self.actual.len()
            + self.assign.len()
            + self.assign_new.len()
            + self.assign_return.len()
            + self.formal.len()
            + self.heap_type.len()
            + self.implements.len()
            + self.load.len()
            + self.ret.len()
            + self.static_invoke.len()
            + self.store.len()
            + self.static_store.len()
            + self.static_load.len()
            + self.this_var.len()
            + self.virtual_invoke.len()
    }

    /// Returns `true` if no relation holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorts and deduplicates every relation, producing a canonical order.
    ///
    /// Frontends may emit tuples in discovery order; canonicalizing makes
    /// programs comparable with `==` and keeps text output stable.
    pub fn canonicalize(&mut self) {
        macro_rules! canon {
            ($($field:ident),*) => {
                $(
                    self.$field.sort_unstable();
                    self.$field.dedup();
                )*
            };
        }
        canon!(
            actual,
            assign,
            assign_new,
            assign_return,
            formal,
            heap_type,
            implements,
            load,
            ret,
            static_invoke,
            store,
            static_store,
            static_load,
            this_var,
            virtual_invoke
        );
    }

    /// Per-relation sizes, in the paper's relation-name order; useful for
    /// logging and for the `text` serializer.
    pub fn relation_sizes(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("actual", self.actual.len()),
            ("assign", self.assign.len()),
            ("assign_new", self.assign_new.len()),
            ("assign_return", self.assign_return.len()),
            ("formal", self.formal.len()),
            ("heap_type", self.heap_type.len()),
            ("implements", self.implements.len()),
            ("load", self.load.len()),
            ("return", self.ret.len()),
            ("static_invoke", self.static_invoke.len()),
            ("store", self.store.len()),
            ("static_store", self.static_store.len()),
            ("static_load", self.static_load.len()),
            ("this_var", self.this_var.len()),
            ("virtual_invoke", self.virtual_invoke.len()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_counts_all_relations() {
        let mut f = Facts::new();
        assert!(f.is_empty());
        f.assign.push((Var(0), Var(1)));
        f.load.push((Var(1), Field(0), Var(2)));
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let mut f = Facts::new();
        f.assign.push((Var(3), Var(1)));
        f.assign.push((Var(0), Var(1)));
        f.assign.push((Var(3), Var(1)));
        f.canonicalize();
        assert_eq!(f.assign, vec![(Var(0), Var(1)), (Var(3), Var(1))]);
    }

    #[test]
    fn relation_sizes_cover_thirteen_relations() {
        let f = Facts::new();
        let sizes = f.relation_sizes();
        assert_eq!(sizes.len(), 15);
        assert!(sizes.iter().all(|&(_, n)| n == 0));
    }
}
