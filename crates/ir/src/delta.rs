//! Structural diffing of programs for incremental re-analysis.
//!
//! Figure 3 is a *monotone* Datalog program: every rule only ever adds
//! derived facts when the input relations grow. An edit that merely
//! **adds** entities and input tuples therefore lets the solver resume its
//! semi-naive fixpoint from a saved database instead of starting over —
//! the least fixpoint of the enlarged program is a superset of the old one
//! and can be reached by seeding the frontier with the delta alone.
//!
//! [`ProgramDiff::between`] classifies an edit. It recognises an edit as
//! additive only when the old program is *structurally embedded* in the
//! new one: every entity table of the base is a prefix of the
//! corresponding table of the next program (ids are dense indices, so a
//! prefix embedding means every old id still names the same entity), and
//! every input relation of the base is a subset of the next program's.
//!
//! Edits that *remove* input tuples (or entry points) over prefix-stable
//! entity tables are classified as [`ProgramDiff::Retractive`]: the
//! derived database is no longer a subset of the new least model, but a
//! DRed (delete-and-rederive) pass can repair it incrementally — see
//! `ctxform::AnalysisDb::extend`. Two removals stay out of scope and are
//! reported [`ProgramDiff::NonMonotone`]: `heap_type` and `implements`
//! removals rewrite the dispatch structure the solver's static indices
//! are built around. True table shrinkage — a removed entity, a renamed
//! entity, a reordered table — is also [`ProgramDiff::NonMonotone`] and
//! callers fall back to a from-scratch solve.

use std::collections::HashSet;
use std::hash::Hash;

use crate::facts::Facts;
use crate::ids::Method;
use crate::program::Program;

/// The classification of an edit from a base program to a next program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramDiff {
    /// The two programs are identical; nothing to do.
    Identical,
    /// The edit is purely additive; the delta holds exactly the new facts.
    /// Boxed: the delta carries full `Facts` tables and would otherwise
    /// dwarf the other variants.
    Additive(Box<ProgramDelta>),
    /// The edit removes (and possibly also adds) input tuples or entry
    /// points while keeping every entity table prefix-stable; a
    /// delete-and-rederive pass can update the database incrementally.
    Retractive(Box<ProgramRetraction>),
    /// The edit rewrites something structural; incremental update is not
    /// sound and the caller must re-solve from scratch.
    NonMonotone {
        /// Human-readable explanation of the first violation found.
        reason: String,
    },
}

/// The added facts between two programs related by an additive edit.
///
/// Entity *tables* need no delta representation: the base tables are
/// prefixes of the next program's tables, so the next program itself
/// describes both old and new entities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramDelta {
    /// Input tuples present in the next program but not the base, per
    /// relation, in the next program's canonical order.
    pub added: Facts,
    /// Entry points of the next program that the base lacked.
    pub added_entry_points: Vec<Method>,
}

impl ProgramDelta {
    /// Total number of added input tuples (not counting entry points).
    pub fn len(&self) -> usize {
        self.added.len()
    }

    /// `true` when the edit added no tuples and no entry points.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.added_entry_points.is_empty()
    }
}

/// A mixed edit over prefix-stable entity tables: the tuples the next
/// program dropped alongside the ones it gained. The removed half drives
/// the over-delete phase of a DRed update; the added half seeds the
/// ordinary monotone resume afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramRetraction {
    /// Input tuples present in the next program but not the base.
    pub added: Facts,
    /// Input tuples present in the base program but not the next.
    pub removed: Facts,
    /// Entry points of the next program that the base lacked.
    pub added_entry_points: Vec<Method>,
    /// Entry points of the base program that the next one dropped.
    pub removed_entry_points: Vec<Method>,
}

impl ProgramRetraction {
    /// Total number of removed input tuples (not counting entry points).
    pub fn removed_len(&self) -> usize {
        self.removed.len()
    }

    /// Total number of added input tuples (not counting entry points).
    pub fn added_len(&self) -> usize {
        self.added.len()
    }
}

impl ProgramDiff {
    /// Diffs `base` against `next` and classifies the edit.
    ///
    /// Both programs should be [validated](Program::validate); the diff
    /// itself never panics on malformed input but its additive guarantee
    /// only means anything for valid programs.
    pub fn between(base: &Program, next: &Program) -> ProgramDiff {
        if base == next {
            return ProgramDiff::Identical;
        }

        // Entity tables: the base must be a prefix of next, including the
        // parallel metadata columns, so every dense id keeps its meaning.
        if let Err(reason) = check_tables(base, next) {
            return ProgramDiff::NonMonotone { reason };
        }

        // Entry points: removing one removes Entry-rule seeds, which a
        // DRed pass can retract.
        let base_entries: HashSet<Method> = base.entry_points.iter().copied().collect();
        let next_entries: HashSet<Method> = next.entry_points.iter().copied().collect();
        let removed_entry_points: Vec<Method> = base
            .entry_points
            .iter()
            .copied()
            .filter(|m| !next_entries.contains(m))
            .collect();
        let added_entry_points: Vec<Method> = next
            .entry_points
            .iter()
            .copied()
            .filter(|m| !base_entries.contains(m))
            .collect();

        // Input relations: added = next ∖ base, removed = base ∖ next.
        let mut added = Facts::new();
        let mut removed = Facts::new();
        macro_rules! diff_relation {
            ($($field:ident),*) => {
                $(
                    let (extra, lost) = split(&base.facts.$field, &next.facts.$field);
                    added.$field = extra;
                    removed.$field = lost;
                )*
            };
        }
        diff_relation!(
            actual,
            assign,
            assign_new,
            assign_return,
            formal,
            heap_type,
            implements,
            load,
            ret,
            static_invoke,
            store,
            static_store,
            static_load,
            this_var,
            virtual_invoke
        );

        if removed.is_empty() && removed_entry_points.is_empty() {
            return ProgramDiff::Additive(Box::new(ProgramDelta {
                added,
                added_entry_points,
            }));
        }

        // Removals the retraction pass does not support: `heap_type` and
        // `implements` tuples define the dispatch structure (Virt's
        // resolve step) that the solver's static indices encode.
        if !removed.heap_type.is_empty() {
            return ProgramDiff::NonMonotone {
                reason: format!(
                    "relation `heap_type` lost {} tuple(s); heap typing must stay \
                     stable for retraction",
                    removed.heap_type.len()
                ),
            };
        }
        if !removed.implements.is_empty() {
            return ProgramDiff::NonMonotone {
                reason: format!(
                    "relation `implements` lost {} tuple(s); dispatch edges must stay \
                     stable for retraction",
                    removed.implements.len()
                ),
            };
        }

        ProgramDiff::Retractive(Box::new(ProgramRetraction {
            added,
            removed,
            added_entry_points,
            removed_entry_points,
        }))
    }
}

/// Splits the symmetric difference of one relation: `(next ∖ base,
/// base ∖ next)`, each half in its own program's order.
fn split<T: Copy + Eq + Hash>(base: &[T], next: &[T]) -> (Vec<T>, Vec<T>) {
    let next_set: HashSet<T> = next.iter().copied().collect();
    let base_set: HashSet<T> = base.iter().copied().collect();
    let added = next
        .iter()
        .copied()
        .filter(|t| !base_set.contains(t))
        .collect();
    let removed = base
        .iter()
        .copied()
        .filter(|t| !next_set.contains(t))
        .collect();
    (added, removed)
}

fn check_tables(base: &Program, next: &Program) -> Result<(), String> {
    fn prefix<T: PartialEq>(name: &str, base: &[T], next: &[T]) -> Result<(), String> {
        if base.len() > next.len() {
            return Err(format!(
                "table `{name}` shrank from {} to {} entries",
                base.len(),
                next.len()
            ));
        }
        if base[..] != next[..base.len()] {
            return Err(format!("table `{name}` changed an existing entry"));
        }
        Ok(())
    }
    prefix("var_names", &base.var_names, &next.var_names)?;
    prefix("var_method", &base.var_method, &next.var_method)?;
    prefix("heap_names", &base.heap_names, &next.heap_names)?;
    prefix("heap_method", &base.heap_method, &next.heap_method)?;
    prefix("inv_names", &base.inv_names, &next.inv_names)?;
    prefix("inv_method", &base.inv_method, &next.inv_method)?;
    prefix("method_names", &base.method_names, &next.method_names)?;
    prefix("method_class", &base.method_class, &next.method_class)?;
    prefix("field_names", &base.field_names, &next.field_names)?;
    prefix("type_names", &base.type_names, &next.type_names)?;
    prefix("supertype", &base.supertype, &next.supertype)?;
    prefix("msig_names", &base.msig_names, &next.msig_names)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::Var;

    fn two_method_program() -> Program {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let main = b.method_in("Main.main", object, &[]);
        b.entry_point(main);
        let x = b.var("x", main);
        b.alloc("h0", object, x, main);
        let helper = b.method_in("Main.helper", object, &["o"]);
        let o = b.var("o", helper);
        let _ = o;
        b.finish().expect("valid")
    }

    #[test]
    fn identical_programs_diff_to_identical() {
        let p = two_method_program();
        assert_eq!(ProgramDiff::between(&p, &p.clone()), ProgramDiff::Identical);
    }

    #[test]
    fn appended_facts_diff_to_additive() {
        let base = two_method_program();
        let mut next = base.clone();
        // A new variable in an existing method plus an assign edge.
        next.var_names.push("y".into());
        next.var_method.push(base.var_method[0]);
        let y = Var((next.var_names.len() - 1) as u32);
        next.facts.assign.push((Var(0), y));
        next.facts.canonicalize();

        match ProgramDiff::between(&base, &next) {
            ProgramDiff::Additive(delta) => {
                assert_eq!(delta.added.assign, vec![(Var(0), y)]);
                assert_eq!(delta.len(), 1);
                assert!(delta.added_entry_points.is_empty());
                assert!(!delta.is_empty());
            }
            other => panic!("expected additive, got {other:?}"),
        }
    }

    #[test]
    fn added_entry_point_is_reported() {
        let base = two_method_program();
        let mut next = base.clone();
        let helper = Method(1);
        next.entry_points.push(helper);
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::Additive(delta) => {
                assert_eq!(delta.added_entry_points, vec![helper]);
                assert!(!delta.is_empty());
                assert_eq!(delta.len(), 0);
            }
            other => panic!("expected additive, got {other:?}"),
        }
    }

    #[test]
    fn removed_tuple_is_retractive() {
        let base = two_method_program();
        let mut next = base.clone();
        let dropped = next.facts.assign_new.clone();
        next.facts.assign_new.clear();
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::Retractive(r) => {
                assert_eq!(r.removed.assign_new, dropped);
                assert_eq!(r.removed_len(), dropped.len());
                assert_eq!(r.added_len(), 0);
                assert!(r.removed_entry_points.is_empty());
            }
            other => panic!("expected retractive, got {other:?}"),
        }
    }

    #[test]
    fn removed_heap_type_is_non_monotone() {
        let base = two_method_program();
        let mut next = base.clone();
        next.facts.heap_type.clear();
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::NonMonotone { reason } => {
                assert!(reason.contains("heap_type"), "{reason}");
            }
            other => panic!("expected non-monotone, got {other:?}"),
        }
    }

    #[test]
    fn removed_implements_is_non_monotone() {
        let mut base = two_method_program();
        base.msig_names.push("run()".into());
        base.facts
            .implements
            .push((Method(1), crate::ids::Type(0), crate::ids::MSig(0)));
        base.facts.canonicalize();
        let mut next = base.clone();
        next.facts.implements.clear();
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::NonMonotone { reason } => {
                assert!(reason.contains("implements"), "{reason}");
            }
            other => panic!("expected non-monotone, got {other:?}"),
        }
    }

    #[test]
    fn renamed_entity_is_non_monotone() {
        let base = two_method_program();
        let mut next = base.clone();
        next.var_names[0] = "renamed".into();
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::NonMonotone { reason } => {
                assert!(reason.contains("var_names"), "{reason}");
            }
            other => panic!("expected non-monotone, got {other:?}"),
        }
    }

    #[test]
    fn shrunk_table_is_non_monotone() {
        let base = two_method_program();
        let mut next = base.clone();
        next.var_names.pop();
        next.var_method.pop();
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::NonMonotone { reason } => {
                assert!(reason.contains("shrank"), "{reason}");
            }
            other => panic!("expected non-monotone, got {other:?}"),
        }
    }

    #[test]
    fn removed_entry_point_is_retractive() {
        let base = two_method_program();
        let mut next = base.clone();
        next.entry_points.clear();
        match ProgramDiff::between(&base, &next) {
            ProgramDiff::Retractive(r) => {
                assert_eq!(r.removed_entry_points, vec![Method(0)]);
                assert_eq!(r.removed_len(), 0);
                assert!(r.added.is_empty());
            }
            other => panic!("expected retractive, got {other:?}"),
        }
    }
}
