//! The [`Program`] container: entity tables + input relations + validation.

use std::collections::HashMap;

use crate::error::IrError;
use crate::facts::Facts;
use crate::ids::{EntityKind, Field, Heap, Inv, MSig, Method, Type, Var};
use crate::index::ProgramIndex;

/// A whole program under analysis: entity metadata plus the Figure 3 input
/// relations.
///
/// A `Program` is immutable once built (use [`crate::ProgramBuilder`]); the
/// solver derives everything else from it. Entity tables are parallel
/// vectors indexed by the dense ids of this crate ([`Var`], [`Heap`], …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Display name of every variable.
    pub var_names: Vec<String>,
    /// Method owning each variable (`parent(Y)` in the paper).
    pub var_method: Vec<Method>,
    /// Display name of every allocation site.
    pub heap_names: Vec<String>,
    /// Method containing each allocation site (`parent(H)`).
    pub heap_method: Vec<Method>,
    /// Display name of every invocation site.
    pub inv_names: Vec<String>,
    /// Method containing each invocation site (`parent(I)`).
    pub inv_method: Vec<Method>,
    /// Display name of every method.
    pub method_names: Vec<String>,
    /// Class in which each method is *implemented* (`classOf` uses this).
    pub method_class: Vec<Type>,
    /// Display name of every field signature.
    pub field_names: Vec<String>,
    /// Display name of every class type.
    pub type_names: Vec<String>,
    /// Superclass of each type (`None` for roots).
    pub supertype: Vec<Option<Type>>,
    /// Display name of every method signature.
    pub msig_names: Vec<String>,
    /// Program entry points (`main` methods); seeds of the Entry rule.
    pub entry_points: Vec<Method>,
    /// The thirteen input relations of Figure 3.
    pub facts: Facts,
}

impl Program {
    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Number of allocation sites.
    pub fn heap_count(&self) -> usize {
        self.heap_names.len()
    }

    /// Number of invocation sites.
    pub fn inv_count(&self) -> usize {
        self.inv_names.len()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.method_names.len()
    }

    /// Number of field signatures.
    pub fn field_count(&self) -> usize {
        self.field_names.len()
    }

    /// Number of class types.
    pub fn type_count(&self) -> usize {
        self.type_names.len()
    }

    /// Number of method signatures.
    pub fn msig_count(&self) -> usize {
        self.msig_names.len()
    }

    /// `classOf(H)`: the class type in which the method containing
    /// allocation site `h` is implemented (used by type sensitivity).
    pub fn class_of_heap(&self, h: Heap) -> Type {
        self.method_class[self.heap_method[h.index()].index()]
    }

    /// Builds the precomputed join indices used by the solver.
    pub fn index(&self) -> ProgramIndex {
        ProgramIndex::new(self)
    }

    /// Summary statistics for reports.
    pub fn stats(&self) -> ProgramStats {
        ProgramStats {
            vars: self.var_count(),
            heaps: self.heap_count(),
            invs: self.inv_count(),
            methods: self.method_count(),
            fields: self.field_count(),
            types: self.type_count(),
            input_facts: self.facts.len(),
        }
    }

    /// Checks referential integrity of every table and relation.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: dangling ids, a heap site with
    /// zero/multiple types, ambiguous dispatch, duplicate formal slots,
    /// formals/`this`/returns owned by a different method, a cyclic class
    /// hierarchy, or a missing entry point.
    pub fn validate(&self) -> Result<(), IrError> {
        self.check_tables()?;
        self.check_relations()?;
        self.check_heap_types()?;
        self.check_dispatch()?;
        self.check_bindings()?;
        self.check_hierarchy()?;
        if self.entry_points.is_empty() {
            return Err(IrError::NoEntryPoint);
        }
        for &m in &self.entry_points {
            self.check_method(m, "entry_points")?;
        }
        Ok(())
    }

    fn check_var(&self, v: Var, context: &str) -> Result<(), IrError> {
        if v.index() >= self.var_count() {
            return Err(unknown(EntityKind::Var, v.0, context));
        }
        Ok(())
    }

    fn check_heap(&self, h: Heap, context: &str) -> Result<(), IrError> {
        if h.index() >= self.heap_count() {
            return Err(unknown(EntityKind::Heap, h.0, context));
        }
        Ok(())
    }

    fn check_inv(&self, i: Inv, context: &str) -> Result<(), IrError> {
        if i.index() >= self.inv_count() {
            return Err(unknown(EntityKind::Inv, i.0, context));
        }
        Ok(())
    }

    fn check_method(&self, m: Method, context: &str) -> Result<(), IrError> {
        if m.index() >= self.method_count() {
            return Err(unknown(EntityKind::Method, m.0, context));
        }
        Ok(())
    }

    fn check_field(&self, f: Field, context: &str) -> Result<(), IrError> {
        if f.index() >= self.field_count() {
            return Err(unknown(EntityKind::Field, f.0, context));
        }
        Ok(())
    }

    fn check_type(&self, t: Type, context: &str) -> Result<(), IrError> {
        if t.index() >= self.type_count() {
            return Err(unknown(EntityKind::Type, t.0, context));
        }
        Ok(())
    }

    fn check_msig(&self, s: MSig, context: &str) -> Result<(), IrError> {
        if s.index() >= self.msig_count() {
            return Err(unknown(EntityKind::MSig, s.0, context));
        }
        Ok(())
    }

    fn check_tables(&self) -> Result<(), IrError> {
        debug_assert_eq!(self.var_names.len(), self.var_method.len());
        for &m in &self.var_method {
            self.check_method(m, "var_method")?;
        }
        for &m in &self.heap_method {
            self.check_method(m, "heap_method")?;
        }
        for &m in &self.inv_method {
            self.check_method(m, "inv_method")?;
        }
        for &t in &self.method_class {
            self.check_type(t, "method_class")?;
        }
        for &sup in self.supertype.iter().flatten() {
            self.check_type(sup, "supertype")?;
        }
        Ok(())
    }

    fn check_relations(&self) -> Result<(), IrError> {
        let f = &self.facts;
        for &(z, i, _) in &f.actual {
            self.check_var(z, "actual")?;
            self.check_inv(i, "actual")?;
        }
        for &(z, y) in &f.assign {
            self.check_var(z, "assign")?;
            self.check_var(y, "assign")?;
        }
        for &(h, y, p) in &f.assign_new {
            self.check_heap(h, "assign_new")?;
            self.check_var(y, "assign_new")?;
            self.check_method(p, "assign_new")?;
        }
        for &(i, y) in &f.assign_return {
            self.check_inv(i, "assign_return")?;
            self.check_var(y, "assign_return")?;
        }
        for &(y, p, _) in &f.formal {
            self.check_var(y, "formal")?;
            self.check_method(p, "formal")?;
        }
        for &(h, t) in &f.heap_type {
            self.check_heap(h, "heap_type")?;
            self.check_type(t, "heap_type")?;
        }
        for &(q, t, s) in &f.implements {
            self.check_method(q, "implements")?;
            self.check_type(t, "implements")?;
            self.check_msig(s, "implements")?;
        }
        for &(y, fld, z) in &f.load {
            self.check_var(y, "load")?;
            self.check_field(fld, "load")?;
            self.check_var(z, "load")?;
        }
        for &(z, p) in &f.ret {
            self.check_var(z, "return")?;
            self.check_method(p, "return")?;
        }
        for &(i, q, p) in &f.static_invoke {
            self.check_inv(i, "static_invoke")?;
            self.check_method(q, "static_invoke")?;
            self.check_method(p, "static_invoke")?;
        }
        for &(x, fld, z) in &f.store {
            self.check_var(x, "store")?;
            self.check_field(fld, "store")?;
            self.check_var(z, "store")?;
        }
        for &(x, fld) in &f.static_store {
            self.check_var(x, "static_store")?;
            self.check_field(fld, "static_store")?;
        }
        for &(fld, z) in &f.static_load {
            self.check_field(fld, "static_load")?;
            self.check_var(z, "static_load")?;
        }
        for &(y, q) in &f.this_var {
            self.check_var(y, "this_var")?;
            self.check_method(q, "this_var")?;
        }
        for &(i, z, s) in &f.virtual_invoke {
            self.check_inv(i, "virtual_invoke")?;
            self.check_var(z, "virtual_invoke")?;
            self.check_msig(s, "virtual_invoke")?;
        }
        Ok(())
    }

    fn check_heap_types(&self) -> Result<(), IrError> {
        let mut counts = vec![0usize; self.heap_count()];
        for &(h, _) in &self.facts.heap_type {
            counts[h.index()] += 1;
        }
        for (h, &count) in counts.iter().enumerate() {
            if count != 1 {
                return Err(IrError::AmbiguousHeapType {
                    heap: h as u32,
                    count,
                });
            }
        }
        Ok(())
    }

    fn check_dispatch(&self) -> Result<(), IrError> {
        let mut seen: HashMap<(Type, MSig), Method> = HashMap::new();
        for &(q, t, s) in &self.facts.implements {
            if let Some(&prev) = seen.get(&(t, s)) {
                if prev != q {
                    return Err(IrError::AmbiguousDispatch { ty: t.0, msig: s.0 });
                }
            } else {
                seen.insert((t, s), q);
            }
        }
        Ok(())
    }

    fn check_bindings(&self) -> Result<(), IrError> {
        let mut formal_slots: HashMap<(Method, u32), Var> = HashMap::new();
        for &(y, p, o) in &self.facts.formal {
            let owner = self.var_method[y.index()];
            if owner != p {
                return Err(IrError::ForeignVariable {
                    var: y.0,
                    claimed: p.0,
                    actual: owner.0,
                    context: "formal".to_owned(),
                });
            }
            if let Some(&prev) = formal_slots.get(&(p, o)) {
                if prev != y {
                    return Err(IrError::DuplicateBinding {
                        method: p.0,
                        slot: format!("formal #{o}"),
                    });
                }
            } else {
                formal_slots.insert((p, o), y);
            }
        }
        let mut this_slots: HashMap<Method, Var> = HashMap::new();
        for &(y, q) in &self.facts.this_var {
            let owner = self.var_method[y.index()];
            if owner != q {
                return Err(IrError::ForeignVariable {
                    var: y.0,
                    claimed: q.0,
                    actual: owner.0,
                    context: "this_var".to_owned(),
                });
            }
            if let Some(&prev) = this_slots.get(&q) {
                if prev != y {
                    return Err(IrError::DuplicateBinding {
                        method: q.0,
                        slot: "this".to_owned(),
                    });
                }
            } else {
                this_slots.insert(q, y);
            }
        }
        for &(z, p) in &self.facts.ret {
            let owner = self.var_method[z.index()];
            if owner != p {
                return Err(IrError::ForeignVariable {
                    var: z.0,
                    claimed: p.0,
                    actual: owner.0,
                    context: "return".to_owned(),
                });
            }
        }
        Ok(())
    }

    fn check_hierarchy(&self) -> Result<(), IrError> {
        // Walk each chain with a step bound; a chain longer than the number
        // of types must contain a cycle.
        let n = self.type_count();
        for start in 0..n {
            let mut cur = Type::from_index(start);
            for _ in 0..=n {
                match self.supertype[cur.index()] {
                    Some(sup) => {
                        if sup.index() == start {
                            return Err(IrError::CyclicHierarchy { ty: start as u32 });
                        }
                        cur = sup;
                    }
                    None => break,
                }
            }
            if self.supertype[cur.index()].is_some() {
                return Err(IrError::CyclicHierarchy { ty: start as u32 });
            }
        }
        Ok(())
    }
}

fn unknown(kind: EntityKind, index: u32, context: &str) -> IrError {
    IrError::UnknownEntity {
        kind,
        index,
        context: context.to_owned(),
    }
}

/// Size summary of a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of variables.
    pub vars: usize,
    /// Number of allocation sites.
    pub heaps: usize,
    /// Number of invocation sites.
    pub invs: usize,
    /// Number of methods.
    pub methods: usize,
    /// Number of field signatures.
    pub fields: usize,
    /// Number of class types.
    pub types: usize,
    /// Total input tuples.
    pub input_facts: usize,
}

impl std::fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} methods, {} vars, {} heaps, {} invs, {} fields, {} types, {} input facts",
            self.methods,
            self.vars,
            self.heaps,
            self.invs,
            self.fields,
            self.types,
            self.input_facts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let main = b.method_in("main", object, &[]);
        b.entry_point(main);
        let x = b.var("x", main);
        b.alloc("h0", object, x, main);
        b.finish().expect("tiny program is valid")
    }

    #[test]
    fn valid_program_passes_validation() {
        let p = tiny();
        assert!(p.validate().is_ok());
        assert_eq!(p.stats().heaps, 1);
    }

    #[test]
    fn dangling_var_is_rejected() {
        let mut p = tiny();
        p.facts.assign.push((Var(99), Var(0)));
        assert!(matches!(p.validate(), Err(IrError::UnknownEntity { .. })));
    }

    #[test]
    fn missing_heap_type_is_rejected() {
        let mut p = tiny();
        p.facts.heap_type.clear();
        assert!(matches!(
            p.validate(),
            Err(IrError::AmbiguousHeapType { count: 0, .. })
        ));
    }

    #[test]
    fn entry_point_is_required() {
        let mut p = tiny();
        p.entry_points.clear();
        assert_eq!(p.validate(), Err(IrError::NoEntryPoint));
    }

    #[test]
    fn cyclic_hierarchy_is_rejected() {
        let mut p = tiny();
        p.type_names.push("A".into());
        p.supertype
            .push(Some(Type::from_index(p.type_names.len() - 1)));
        assert!(matches!(p.validate(), Err(IrError::CyclicHierarchy { .. })));
    }

    #[test]
    fn class_of_heap_follows_containing_method() {
        let p = tiny();
        assert_eq!(p.class_of_heap(Heap(0)), Type(0));
    }

    #[test]
    fn stats_display_mentions_counts() {
        let s = tiny().stats().to_string();
        assert!(s.contains("1 methods"));
        assert!(s.contains("1 heaps"));
    }
}
