//! Precomputed join indices over the input relations.
//!
//! The solver's rules join derived facts against the static relations of
//! Figure 3; [`ProgramIndex`] materializes every such access path once so
//! the inner loops are `Vec` lookups.

use ctxform_hash::FxHashMap;

use crate::ids::{Field, Heap, Inv, MSig, Method, Type, Var};
use crate::program::Program;

/// All static access paths used by the analysis rules.
///
/// Each table is keyed by the entity the corresponding rule is driven by
/// (e.g. a new `pts(Z, …)` fact drives `assign`, `load`, `store`, `actual`,
/// `return`, and `virtual_invoke` lookups keyed by `Z`).
#[derive(Debug, Clone, Default)]
pub struct ProgramIndex {
    /// `assign(Z, Y)` keyed by `Z`: all targets `Y`.
    pub assign_from: FxHashMap<Var, Vec<Var>>,
    /// `load(Y, F, Z)` keyed by base `Y`: all `(F, Z)`.
    pub loads_by_base: FxHashMap<Var, Vec<(Field, Var)>>,
    /// `store(X, F, Z)` keyed by value `X`: all `(F, Z)` (base `Z`).
    pub stores_by_value: FxHashMap<Var, Vec<(Field, Var)>>,
    /// `store(X, F, Z)` keyed by base `Z`: all `(F, X)` (value `X`).
    pub stores_by_base: FxHashMap<Var, Vec<(Field, Var)>>,
    /// `actual(Z, I, O)` keyed by `Z`: all `(I, O)`.
    pub actuals_by_var: FxHashMap<Var, Vec<(Inv, u32)>>,
    /// `actual(Z, I, O)` keyed by `I`: all `(O, Z)`.
    pub actuals_by_inv: FxHashMap<Inv, Vec<(u32, Var)>>,
    /// `formal(Y, P, O)` keyed by `(P, O)`.
    pub formal_of: FxHashMap<(Method, u32), Var>,
    /// `return(Z, P)` keyed by `Z`: methods returning `Z`.
    pub returns_by_var: FxHashMap<Var, Vec<Method>>,
    /// `return(Z, P)` keyed by `P`: return variables of `P`.
    pub returns_by_method: FxHashMap<Method, Vec<Var>>,
    /// `assign_return(I, Y)` keyed by `I`.
    pub assign_return_by_inv: FxHashMap<Inv, Vec<Var>>,
    /// `virtual_invoke(I, Z, S)` keyed by receiver `Z`: all `(I, S)`.
    pub virtuals_by_recv: FxHashMap<Var, Vec<(Inv, MSig)>>,
    /// `static_invoke(I, Q, P)` keyed by containing method `P`:
    /// all `(I, Q)`.
    pub statics_by_method: FxHashMap<Method, Vec<(Inv, Method)>>,
    /// `assign_new(H, Y, P)` keyed by `P`: all `(H, Y)`.
    pub allocs_by_method: FxHashMap<Method, Vec<(Heap, Var)>>,
    /// `static_store(X, F)` keyed by value `X`.
    pub static_stores_by_var: FxHashMap<Var, Vec<Field>>,
    /// `static_load(F, Z)` keyed by `F`.
    pub static_loads_by_field: FxHashMap<Field, Vec<Var>>,
    /// `static_load(F, Z)` keyed by the method containing `Z`.
    pub static_loads_by_method: FxHashMap<Method, Vec<(Field, Var)>>,
    /// `this_var(Y, Q)` keyed by `Q`.
    pub this_of_method: FxHashMap<Method, Var>,
    /// `heap_type(H, T)` as a dense vector keyed by `H`.
    pub type_of_heap: Vec<Type>,
    /// `implements(Q, T, S)` keyed by `(T, S)`: dispatch table.
    pub dispatch: FxHashMap<(Type, MSig), Method>,
    /// `classOf(H)` as a dense vector keyed by `H` (type sensitivity).
    pub class_of_heap: Vec<Type>,
}

impl ProgramIndex {
    /// Builds every index for `program`.
    ///
    /// The program should already be [validated](Program::validate);
    /// otherwise dangling ids panic here.
    pub fn new(program: &Program) -> Self {
        let f = &program.facts;
        let mut ix = ProgramIndex {
            type_of_heap: vec![Type(0); program.heap_count()],
            class_of_heap: vec![Type(0); program.heap_count()],
            ..ProgramIndex::default()
        };
        for &(z, y) in &f.assign {
            ix.assign_from.entry(z).or_default().push(y);
        }
        for &(y, fld, z) in &f.load {
            ix.loads_by_base.entry(y).or_default().push((fld, z));
        }
        for &(x, fld, z) in &f.store {
            ix.stores_by_value.entry(x).or_default().push((fld, z));
            ix.stores_by_base.entry(z).or_default().push((fld, x));
        }
        for &(z, i, o) in &f.actual {
            ix.actuals_by_var.entry(z).or_default().push((i, o));
            ix.actuals_by_inv.entry(i).or_default().push((o, z));
        }
        for &(y, p, o) in &f.formal {
            ix.formal_of.insert((p, o), y);
        }
        for &(z, p) in &f.ret {
            ix.returns_by_var.entry(z).or_default().push(p);
            ix.returns_by_method.entry(p).or_default().push(z);
        }
        for &(i, y) in &f.assign_return {
            ix.assign_return_by_inv.entry(i).or_default().push(y);
        }
        for &(i, z, s) in &f.virtual_invoke {
            ix.virtuals_by_recv.entry(z).or_default().push((i, s));
        }
        for &(i, q, p) in &f.static_invoke {
            ix.statics_by_method.entry(p).or_default().push((i, q));
        }
        for &(h, y, p) in &f.assign_new {
            ix.allocs_by_method.entry(p).or_default().push((h, y));
        }
        for &(x, fld) in &f.static_store {
            ix.static_stores_by_var.entry(x).or_default().push(fld);
        }
        for &(fld, z) in &f.static_load {
            ix.static_loads_by_field.entry(fld).or_default().push(z);
            let p = program.var_method[z.index()];
            ix.static_loads_by_method
                .entry(p)
                .or_default()
                .push((fld, z));
        }
        for &(y, q) in &f.this_var {
            ix.this_of_method.insert(q, y);
        }
        for &(h, t) in &f.heap_type {
            ix.type_of_heap[h.index()] = t;
        }
        for &(q, t, s) in &f.implements {
            ix.dispatch.insert((t, s), q);
        }
        for h in 0..program.heap_count() {
            ix.class_of_heap[h] = program.class_of_heap(Heap::from_index(h));
        }
        ix
    }

    /// Resolves a virtual dispatch: the method that signature `s` invokes
    /// on a receiver allocated with type `t`, if any.
    pub fn resolve(&self, t: Type, s: MSig) -> Option<Method> {
        self.dispatch.get(&(t, s)).copied()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;

    #[test]
    fn index_materializes_all_access_paths() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let t = b.class("T", Some(object));
        let get = b.method_in("T.get", t, &[]);
        let this_get = b.this("this", get);
        let fld = b.field("f");
        let out = b.var("out", get);
        b.load(this_get, fld, out);
        b.ret(out, get);
        let s = b.msig("get/0");
        b.implement(get, t, s);

        let main = b.method_in("main", t, &[]);
        b.entry_point(main);
        let box_var = b.var("box", main);
        let payload = b.var("payload", main);
        let got = b.var("got", main);
        let h_box = b.alloc("main/box", t, box_var, main);
        b.alloc("main/payload", object, payload, main);
        b.store(payload, fld, box_var);
        let i = b.virtual_call("main/get", main, box_var, s, &[], Some(got));

        let prog = b.finish().expect("valid");
        let ix = prog.index();

        assert_eq!(ix.loads_by_base[&this_get], vec![(fld, out)]);
        assert_eq!(ix.stores_by_value[&payload], vec![(fld, box_var)]);
        assert_eq!(ix.stores_by_base[&box_var], vec![(fld, payload)]);
        assert_eq!(ix.virtuals_by_recv[&box_var], vec![(i, s)]);
        assert_eq!(ix.assign_return_by_inv[&i], vec![got]);
        assert_eq!(ix.returns_by_method[&get], vec![out]);
        assert_eq!(ix.this_of_method[&get], this_get);
        assert_eq!(ix.type_of_heap[h_box.index()], t);
        assert_eq!(ix.resolve(t, s), Some(get));
        assert_eq!(ix.resolve(object, s), None);
        assert_eq!(ix.class_of_heap[h_box.index()], t);
        assert_eq!(ix.allocs_by_method[&main].len(), 2);
    }
}
