//! Fluent construction of [`Program`]s.

use std::collections::HashMap;

use crate::error::IrError;
use crate::ids::{Field, Heap, Inv, MSig, Method, Type, Var};
use crate::program::Program;

/// Incremental builder for a [`Program`].
///
/// Entities are created with `class`, `method_in`, `var`, … and statements
/// are recorded with `assign`, `alloc`, `load`, `store`, `static_call`,
/// `virtual_call`, `ret`. [`ProgramBuilder::finish`] canonicalizes the fact
/// relations and validates the result.
///
/// ```
/// use ctxform_ir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let object = b.class("Object", None);
/// let main = b.method_in("main", object, &[]);
/// b.entry_point(main);
/// let x = b.var("x", main);
/// let y = b.var("y", main);
/// b.alloc("main/new#0", object, x, main);
/// b.assign(x, y); // y = x;
/// let program = b.finish()?;
/// assert_eq!(program.stats().vars, 2);
/// # Ok::<(), ctxform_ir::IrError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    field_by_name: HashMap<String, Field>,
    msig_by_name: HashMap<String, MSig>,
    formals: HashMap<Method, Vec<Var>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class type with an optional superclass.
    pub fn class(&mut self, name: &str, supertype: Option<Type>) -> Type {
        let t = Type::from_index(self.program.type_names.len());
        self.program.type_names.push(name.to_owned());
        self.program.supertype.push(supertype);
        t
    }

    /// Interns a field signature by name.
    pub fn field(&mut self, name: &str) -> Field {
        if let Some(&f) = self.field_by_name.get(name) {
            return f;
        }
        let f = Field::from_index(self.program.field_names.len());
        self.program.field_names.push(name.to_owned());
        self.field_by_name.insert(name.to_owned(), f);
        f
    }

    /// Interns a method signature (dispatch key) by name.
    pub fn msig(&mut self, name: &str) -> MSig {
        if let Some(&s) = self.msig_by_name.get(name) {
            return s;
        }
        let s = MSig::from_index(self.program.msig_names.len());
        self.program.msig_names.push(name.to_owned());
        self.msig_by_name.insert(name.to_owned(), s);
        s
    }

    /// Declares a method implemented in `class`, creating one formal
    /// variable per name in `formal_names` (retrievable via
    /// [`ProgramBuilder::formals`]).
    pub fn method_in(&mut self, name: &str, class: Type, formal_names: &[&str]) -> Method {
        let m = Method::from_index(self.program.method_names.len());
        self.program.method_names.push(name.to_owned());
        self.program.method_class.push(class);
        let mut formals = Vec::with_capacity(formal_names.len());
        for (o, formal_name) in formal_names.iter().enumerate() {
            let v = self.var(formal_name, m);
            self.program.facts.formal.push((v, m, o as u32));
            formals.push(v);
        }
        self.formals.insert(m, formals);
        m
    }

    /// Declares a method implemented in `class` *without* creating its
    /// formal variables; bind them later with
    /// [`ProgramBuilder::bind_formals`]. Frontends that declare all
    /// methods up front but lower bodies per class use this to keep the
    /// variable table in per-method order, so appending a class to a
    /// source program extends every entity table instead of interleaving
    /// new ids among existing ones (which incremental re-analysis relies
    /// on — see `ProgramDiff`).
    pub fn method_decl(&mut self, name: &str, class: Type) -> Method {
        let m = Method::from_index(self.program.method_names.len());
        self.program.method_names.push(name.to_owned());
        self.program.method_class.push(class);
        m
    }

    /// Creates the formal-parameter variables of a method declared with
    /// [`ProgramBuilder::method_decl`], recording one `formal` tuple per
    /// name in slot order, and returns them (also retrievable via
    /// [`ProgramBuilder::formals`]).
    pub fn bind_formals(&mut self, m: Method, formal_names: &[&str]) -> Vec<Var> {
        let mut formals = Vec::with_capacity(formal_names.len());
        for (o, formal_name) in formal_names.iter().enumerate() {
            let v = self.var(formal_name, m);
            self.program.facts.formal.push((v, m, o as u32));
            formals.push(v);
        }
        self.formals.insert(m, formals.clone());
        formals
    }

    /// The formal-parameter variables of `m`, in slot order.
    pub fn formals(&self, m: Method) -> &[Var] {
        self.formals.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Creates the `this` variable of method `m` and records the
    /// `this_var` tuple.
    pub fn this(&mut self, name: &str, m: Method) -> Var {
        let v = self.var(name, m);
        self.program.facts.this_var.push((v, m));
        v
    }

    /// Marks `m` as a program entry point.
    pub fn entry_point(&mut self, m: Method) {
        self.program.entry_points.push(m);
    }

    /// Records that invoking signature `s` on receiver type `t` dispatches
    /// to method `q` (`implements(Q, T, S)`).
    pub fn implement(&mut self, q: Method, t: Type, s: MSig) {
        self.program.facts.implements.push((q, t, s));
    }

    /// Creates a fresh local variable inside method `m`.
    pub fn var(&mut self, name: &str, m: Method) -> Var {
        let v = Var::from_index(self.program.var_names.len());
        self.program.var_names.push(name.to_owned());
        self.program.var_method.push(m);
        v
    }

    /// Records `into = new ty(); // site` inside method `m`.
    pub fn alloc(&mut self, site_name: &str, ty: Type, into: Var, m: Method) -> Heap {
        let h = Heap::from_index(self.program.heap_names.len());
        self.program.heap_names.push(site_name.to_owned());
        self.program.heap_method.push(m);
        self.program.facts.assign_new.push((h, into, m));
        self.program.facts.heap_type.push((h, ty));
        h
    }

    /// Records `to = from;`.
    pub fn assign(&mut self, from: Var, to: Var) {
        self.program.facts.assign.push((from, to));
    }

    /// Records `dst = base.field;`.
    pub fn load(&mut self, base: Var, field: Field, dst: Var) {
        self.program.facts.load.push((base, field, dst));
    }

    /// Records `base.field = value;`.
    pub fn store(&mut self, value: Var, field: Field, base: Var) {
        self.program.facts.store.push((value, field, base));
    }

    /// Records `C.field = value;` for a static field.
    pub fn static_store(&mut self, value: Var, field: Field) {
        self.program.facts.static_store.push((value, field));
    }

    /// Records `dst = C.field;` for a static field.
    pub fn static_load(&mut self, field: Field, dst: Var) {
        self.program.facts.static_load.push((field, dst));
    }

    /// Records `return z;` inside method `p`.
    pub fn ret(&mut self, z: Var, p: Method) {
        self.program.facts.ret.push((z, p));
    }

    /// Records a static invocation of `target` at a fresh site inside
    /// `caller`, passing `args` and assigning the return value to `result`.
    pub fn static_call(
        &mut self,
        site_name: &str,
        caller: Method,
        target: Method,
        args: &[Var],
        result: Option<Var>,
    ) -> Inv {
        let i = self.fresh_inv(site_name, caller);
        self.program.facts.static_invoke.push((i, target, caller));
        self.record_args(i, args, result);
        i
    }

    /// Records a virtual invocation of signature `msig` on receiver `recv`
    /// at a fresh site inside `caller`.
    pub fn virtual_call(
        &mut self,
        site_name: &str,
        caller: Method,
        recv: Var,
        msig: MSig,
        args: &[Var],
        result: Option<Var>,
    ) -> Inv {
        let i = self.fresh_inv(site_name, caller);
        self.program.facts.virtual_invoke.push((i, recv, msig));
        self.record_args(i, args, result);
        i
    }

    fn fresh_inv(&mut self, name: &str, caller: Method) -> Inv {
        let i = Inv::from_index(self.program.inv_names.len());
        self.program.inv_names.push(name.to_owned());
        self.program.inv_method.push(caller);
        i
    }

    /// Records a single `actual` tuple; useful when some argument
    /// positions carry no variable (e.g. null literals) and slot numbers
    /// must still align with formals.
    pub fn push_actual(&mut self, arg: Var, i: Inv, slot: u32) {
        self.program.facts.actual.push((arg, i, slot));
    }

    /// The display name of a previously created method.
    pub fn method_name(&self, m: Method) -> String {
        self.program.method_names[m.index()].clone()
    }

    fn record_args(&mut self, i: Inv, args: &[Var], result: Option<Var>) {
        for (o, &a) in args.iter().enumerate() {
            self.program.facts.actual.push((a, i, o as u32));
        }
        if let Some(r) = result {
            self.program.facts.assign_return.push((i, r));
        }
    }

    /// Canonicalizes the relations and validates the program.
    ///
    /// # Errors
    ///
    /// Any constraint violation reported by [`Program::validate`].
    pub fn finish(mut self) -> Result<Program, IrError> {
        self.program.facts.canonicalize();
        self.program.validate()?;
        Ok(self.program)
    }

    /// Returns the program without validating (for tests that need invalid
    /// programs).
    pub fn finish_unchecked(mut self) -> Program {
        self.program.facts.canonicalize();
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_calls_and_formals() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let t = b.class("T", Some(object));
        let id = b.method_in("T.id", t, &["p"]);
        let p = b.formals(id)[0];
        b.ret(p, id);
        let main = b.method_in("main", t, &[]);
        b.entry_point(main);
        let x = b.var("x", main);
        let r = b.var("r", main);
        b.alloc("main/new", object, x, main);
        let i = b.static_call("main/id", main, id, &[x], Some(r));
        let prog = b.finish().expect("valid");
        assert_eq!(prog.facts.actual, vec![(x, i, 0)]);
        assert_eq!(prog.facts.assign_return, vec![(i, r)]);
        assert_eq!(prog.facts.formal, vec![(p, id, 0)]);
        assert_eq!(prog.facts.static_invoke, vec![(i, id, main)]);
    }

    #[test]
    fn fields_and_msigs_are_interned() {
        let mut b = ProgramBuilder::new();
        let f1 = b.field("f");
        let f2 = b.field("f");
        let g = b.field("g");
        assert_eq!(f1, f2);
        assert_ne!(f1, g);
        let s1 = b.msig("m/1");
        let s2 = b.msig("m/1");
        assert_eq!(s1, s2);
    }

    #[test]
    fn this_var_is_recorded() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let m = b.method_in("T.m", object, &[]);
        let this = b.this("this", m);
        b.entry_point(m);
        let prog = b.finish().expect("valid");
        assert_eq!(prog.facts.this_var, vec![(this, m)]);
    }

    #[test]
    fn virtual_call_records_receiver_and_sig() {
        let mut b = ProgramBuilder::new();
        let object = b.class("Object", None);
        let m = b.method_in("main", object, &[]);
        b.entry_point(m);
        let recv = b.var("recv", m);
        b.alloc("site", object, recv, m);
        let s = b.msig("run/0");
        let run = b.method_in("Object.run", object, &[]);
        b.this("this", run);
        b.implement(run, object, s);
        let i = b.virtual_call("main/run", m, recv, s, &[], None);
        let prog = b.finish().expect("valid");
        assert_eq!(prog.facts.virtual_invoke, vec![(i, recv, s)]);
        assert_eq!(prog.inv_method[i.index()], m);
    }
}
