//! Densely-numbered entity identifiers.
//!
//! Every entity of an analyzed program is a `u32` index into a per-kind
//! table owned by [`crate::Program`]. Dense ids keep relation tuples small
//! (the paper's Datalog engine does the same) and make `Vec`-backed lookup
//! tables possible.

use std::fmt;

/// The kind of a program entity, used in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntityKind {
    /// A local variable (including `this` variables and compiler temps).
    Var,
    /// A heap allocation site.
    Heap,
    /// An invocation site (static or virtual).
    Inv,
    /// A method definition.
    Method,
    /// A field signature.
    Field,
    /// A class type.
    Type,
    /// A method signature (name + arity), the dispatch key.
    MSig,
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntityKind::Var => "var",
            EntityKind::Heap => "heap",
            EntityKind::Inv => "inv",
            EntityKind::Method => "method",
            EntityKind::Field => "field",
            EntityKind::Type => "type",
            EntityKind::MSig => "msig",
        };
        f.write_str(s)
    }
}

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $kind:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The entity kind tag for this id type.
            pub const KIND: EntityKind = EntityKind::$kind;

            /// Returns the raw dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("entity index overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> $name {
                $name(raw)
            }
        }
    };
}

entity_id!(
    /// A local variable.
    ///
    /// Variables include source locals, `this` variables, and temporaries
    /// introduced by frontend lowering. Each belongs to exactly one method.
    Var, Var, "v"
);
entity_id!(
    /// A heap allocation site (`new T()` occurrence).
    ///
    /// The analysis abstracts run-time objects by their allocation site,
    /// optionally qualified by a heap context.
    Heap, Heap, "h"
);
entity_id!(
    /// An invocation site (one occurrence of a static or virtual call).
    ///
    /// Under call-site sensitivity, invocation sites are the elemental
    /// contexts.
    Inv, Inv, "i"
);
entity_id!(
    /// A method definition.
    Method, Method, "m"
);
entity_id!(
    /// A field signature (declaring class + field name).
    Field, Field, "f"
);
entity_id!(
    /// A class type.
    ///
    /// Under type sensitivity, class types are the elemental contexts.
    Type, Type, "t"
);
entity_id!(
    /// A method signature: dispatch key of a virtual invocation
    /// (method name + arity in MiniJava).
    MSig, MSig, "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_values() {
        let v = Var::from_index(7);
        assert_eq!(v.index(), 7);
        assert_eq!(u32::from(v), 7);
        assert_eq!(Var::from(7u32), v);
    }

    #[test]
    fn ids_format_with_kind_prefix() {
        assert_eq!(format!("{:?}", Heap(3)), "h3");
        assert_eq!(format!("{}", Method(12)), "m12");
        assert_eq!(format!("{}", MSig(0)), "s0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(Var(1) < Var(2));
        assert!(Inv(0) < Inv(10));
    }

    #[test]
    fn entity_kind_displays_lowercase() {
        assert_eq!(EntityKind::Var.to_string(), "var");
        assert_eq!(EntityKind::MSig.to_string(), "msig");
        assert_eq!(Var::KIND, EntityKind::Var);
    }
}
