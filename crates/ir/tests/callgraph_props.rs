//! Property tests for the call-graph condensation: Tarjan's SCC
//! partition on seeded random digraphs, checked against a naive
//! reachability oracle (O(n·m) BFS per node — fine at these sizes).
//!
//! Two properties pin the contract the summary solver relies on:
//!
//! 1. **Partition correctness** — two nodes share a component iff each
//!    reaches the other.
//! 2. **Reverse-topological numbering** — every cross-component edge
//!    points at a smaller component id, so ascending id order visits
//!    callees before callers.

use ctxform_hash::SplitMix64;
use ctxform_ir::scc_partition;

/// Per-node reachability (including self) by BFS.
fn reachability(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<bool>> {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u as usize].push(v as usize);
    }
    let mut reach = vec![vec![false; n]; n];
    for (start, row) in reach.iter_mut().enumerate() {
        let mut work = vec![start];
        row[start] = true;
        while let Some(u) = work.pop() {
            for &v in &adj[u] {
                if !row[v] {
                    row[v] = true;
                    work.push(v);
                }
            }
        }
    }
    reach
}

fn random_digraph(rng: &mut SplitMix64) -> (usize, Vec<(u32, u32)>) {
    let n = rng.range_inclusive(0, 24);
    if n == 0 {
        return (0, Vec::new());
    }
    // Densities from sparse forests to well past the SCC phase
    // transition (m ≈ 3n), so single-node, mid-size, and giant
    // components all appear across the seed sweep.
    let m = rng.below(3 * n + 2);
    let edges = (0..m)
        .map(|_| (rng.below(n) as u32, rng.below(n) as u32))
        .collect();
    (n, edges)
}

#[test]
fn scc_partition_matches_mutual_reachability_oracle() {
    for seed in 0..300u64 {
        let mut rng = SplitMix64::new(seed);
        let (n, edges) = random_digraph(&mut rng);
        let part = scc_partition(n, &edges);
        let reach = reachability(n, &edges);
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            assert!(
                (part.comp_of[u] as usize) < part.comp_count,
                "seed {seed}: component id out of range"
            );
            for v in 0..n {
                let together = part.comp_of[u] == part.comp_of[v];
                let mutual = reach[u][v] && reach[v][u];
                assert_eq!(
                    together, mutual,
                    "seed {seed}: nodes {u},{v} partition/oracle disagree \
                     (n={n}, edges={edges:?})"
                );
            }
        }
        // Every id in 0..comp_count is used (ids are dense).
        let mut used = vec![false; part.comp_count];
        for &c in &part.comp_of {
            used[c as usize] = true;
        }
        assert!(
            used.iter().all(|&b| b),
            "seed {seed}: component ids are not dense"
        );
    }
}

#[test]
fn scc_numbering_is_reverse_topological() {
    for seed in 0..300u64 {
        let mut rng = SplitMix64::new(seed ^ 0x05CC_05CC);
        let (n, edges) = random_digraph(&mut rng);
        let part = scc_partition(n, &edges);
        for &(u, v) in &edges {
            let (cu, cv) = (part.comp_of[u as usize], part.comp_of[v as usize]);
            if cu != cv {
                assert!(
                    cv < cu,
                    "seed {seed}: edge {u}->{v} crosses components {cu}->{cv} \
                     but the target id is not smaller (n={n}, edges={edges:?})"
                );
            }
        }
    }
}
