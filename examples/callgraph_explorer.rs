//! Build a context-sensitive call graph for a synthetic benchmark and
//! explore it: reachable methods, polymorphic sites, context multiplicity,
//! and how compactly the two abstractions represent the same call graph.
//!
//! ```text
//! cargo run --release --example callgraph_explorer [benchmark] [scale]
//! ```

use std::collections::HashMap;

use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::compile;
use ctxform_synth::{generate, preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "pmd".to_owned());
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let cfg = preset(&name)
        .ok_or("unknown benchmark (try antlr/bloat/chart/eclipse/luindex/pmd/xalan)")?;
    let module = compile(&generate(&cfg.scale_driver(scale)))?;
    let program = &module.program;
    println!("{name} at scale {scale}: {}", program.stats());

    let sensitivity = "2-object+H".parse()?;
    let t = analyze(program, &AnalysisConfig::transformer_strings(sensitivity));
    let c = analyze(program, &AnalysisConfig::context_strings(sensitivity));

    println!(
        "\ncall graph at 2-object+H: {} CI edges; {} CS edges (context strings) vs {} (transformer strings)",
        t.ci.call.len(),
        c.stats.call,
        t.stats.call
    );
    println!(
        "reachable methods: {} of {}",
        t.ci.reach.len(),
        program.method_count()
    );
    println!(
        "context multiplicity: {} reach facts over {} methods (mean {:.1} contexts/method)",
        c.stats.reach,
        t.ci.reach.len(),
        c.stats.reach as f64 / t.ci.reach.len().max(1) as f64
    );

    // Most polymorphic invocation sites (CI view).
    let mut targets_per_site: HashMap<u32, usize> = HashMap::new();
    for &(i, _) in &t.ci.call {
        *targets_per_site.entry(i.0).or_insert(0) += 1;
    }
    let mut sites: Vec<(u32, usize)> = targets_per_site.into_iter().collect();
    sites.sort_by_key(|&(i, n)| (std::cmp::Reverse(n), i));
    println!("\nmost polymorphic invocation sites:");
    for &(i, n) in sites.iter().take(5) {
        println!("  {:45} {} targets", program.inv_names[i as usize], n);
    }

    // Callees with the most context-string call edges: the methods whose
    // enumeration transformer strings compress the hardest.
    let mut cs_edges_per_callee: HashMap<u32, usize> = HashMap::new();
    for &(_, q) in &c.ci.call {
        cs_edges_per_callee.entry(q.0).or_insert(0);
    }
    // (The CI projection has one entry per (site, callee); use the CS/CI
    // ratio as the compression indicator.)
    println!(
        "\ncall-edge compression: CS/CI edge ratio {:.2} (context strings) vs {:.2} (transformer strings)",
        c.stats.call as f64 / c.ci.call.len().max(1) as f64,
        t.stats.call as f64 / t.ci.call.len().max(1) as f64
    );

    println!(
        "\ntotals: cstring {} facts in {:?}; tstring {} facts in {:?} ({:.1}% fewer)",
        c.stats.total(),
        c.stats.duration,
        t.stats.total(),
        t.stats.duration,
        100.0 * (c.stats.total() - t.stats.total()) as f64 / c.stats.total() as f64
    );
    assert_eq!(
        c.ci.call, t.ci.call,
        "both abstractions agree on the CI call graph"
    );
    Ok(())
}
