//! Quickstart: compile a MiniJava program, run the transformer-string
//! analysis at 2-object+H, and query the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::compile;

const SOURCE: &str = r#"
class Box {
    Object value;
    void set(Object v) { this.value = v; }
    Object get() { return this.value; }
}
class Main {
    public static void main(String[] args) {
        Box b1 = new Box();
        Box b2 = new Box();
        Object o1 = new Object();
        Object o2 = new Object();
        b1.set(o1);
        b2.set(o2);
        Object r1 = b1.get();
        Object r2 = b2.get();
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile(SOURCE)?;
    let program = &module.program;
    println!("compiled: {}", program.stats());

    // The paper's most precise evaluated configuration.
    let config = AnalysisConfig::transformer_strings("2-object+H".parse()?);
    let result = analyze(program, &config);
    println!(
        "analysis ({config}): {} pts, {} call edges, {} reachable methods in {:?}",
        result.stats.pts,
        result.stats.call,
        result.ci.reach.len(),
        result.stats.duration
    );

    // Query points-to sets of main's locals.
    let main = module.method_by_name("Main.main").expect("main exists");
    println!("\npoints-to sets in Main.main:");
    for name in ["b1", "b2", "o1", "o2", "r1", "r2"] {
        let var = module.var_by_name(main, name).expect("var exists");
        let heaps: Vec<String> = result
            .ci
            .points_to(var)
            .into_iter()
            .map(|h| program.heap_names[h.index()].clone())
            .collect();
        println!("  {name:3} -> {heaps:?}");
    }

    // The two boxes stay disambiguated: r1 gets only o1's object.
    let r1 = module.var_by_name(main, "r1").unwrap();
    let o1 = module.var_by_name(main, "o1").unwrap();
    let h1 = module.heap_assigned_to(o1).unwrap();
    assert_eq!(result.ci.points_to(r1), vec![h1]);
    println!("\nok: 2-object+H keeps the two boxes apart.");
    Ok(())
}
