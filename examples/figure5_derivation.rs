//! Figure 5 side by side: the derivations of the context-string and
//! transformer-string analyses on the static `id`/`m` example at 1-call+H.
//!
//! The paper's table shows that context strings enumerate 20 facts where
//! transformer strings derive 12 — e.g. `pts(r, h1, ε)` replaces four
//! enumerated pairs.
//!
//! ```text
//! cargo run --example figure5_derivation
//! ```

use ctxform::{analyze, AnalysisConfig, LoggedFact};
use ctxform_minijava::{compile, corpus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile(corpus::FIG5)?;
    let sensitivity = "1-call+H".parse()?;
    let cfg_c = AnalysisConfig::context_strings(sensitivity).with_recorded_facts();
    let cfg_t = AnalysisConfig::transformer_strings(sensitivity).with_recorded_facts();
    let rc = analyze(&module.program, &cfg_c);
    let rt = analyze(&module.program, &cfg_t);

    let keep = |log: &[LoggedFact]| -> Vec<String> {
        log.iter()
            .filter(|f| matches!(f.relation, "pts" | "call" | "reach"))
            .map(|f| format!("{:40} [{}]", f.text, f.rule))
            .collect()
    };
    let left = keep(&rc.log);
    let right = keep(&rt.log);

    println!("Figure 5 derivations at 1-call+H (derivation order):\n");
    println!("{:60} | transformer strings", "context strings");
    println!("{:-<60}-+-{:-<60}", "", "");
    for i in 0..left.len().max(right.len()) {
        let l = left.get(i).map(String::as_str).unwrap_or("");
        let r = right.get(i).map(String::as_str).unwrap_or("");
        println!("{l:60} | {r}");
    }
    println!(
        "\ntotals: {} facts with context strings vs {} with transformer strings",
        left.len(),
        right.len()
    );
    assert_eq!(left.len(), 20);
    assert_eq!(right.len(), 12);
    Ok(())
}
