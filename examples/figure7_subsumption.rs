//! Figure 7: subsuming facts from multiple data-flow paths, and the §8/§10
//! subsumption-elimination remedy.
//!
//! On the Fig. 7 program at 1-call+H, `v` points to `h1` both directly
//! (transformer `ε`) and through the receiver's field (`c1·ĉ1`). The `ε`
//! fact subsumes the other, so every fact derivable from `c1·ĉ1` is also
//! derivable from `ε` — duplicated work the paper measures on bloat.
//!
//! ```text
//! cargo run --example figure7_subsumption
//! ```

use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::{compile, corpus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile(corpus::FIG7)?;
    let sensitivity = "1-call+H".parse()?;
    let cfg = AnalysisConfig::transformer_strings(sensitivity).with_recorded_facts();
    let plain = analyze(&module.program, &cfg);

    println!("Figure 7 transformer-string derivation at 1-call+H:\n");
    for fact in &plain.log {
        println!("  {:45} [{}]", fact.text, fact.rule);
    }

    let v_facts: Vec<&str> = plain
        .log
        .iter()
        .filter(|f| f.text.starts_with("pts(v,"))
        .map(|f| f.text.as_str())
        .collect();
    println!("\nfacts for v: {v_facts:#?}");
    assert_eq!(v_facts.len(), 2, "v is reached via two data-flow paths");

    println!("\npts configuration histogram (x*w?e* tags of section 7):");
    for (tag, count) in &plain.stats.pts_configurations {
        let tag = if tag.is_empty() { "ε" } else { tag };
        println!("  {tag:6} {count}");
    }

    let subsumed = analyze(&module.program, &cfg.with_subsumption());
    println!(
        "\nwith subsumption elimination: {} pts facts (was {}), {} dropped/retired",
        subsumed.stats.pts,
        plain.stats.pts,
        subsumed.stats.subsumed_dropped + subsumed.stats.subsumed_retired
    );
    assert!(subsumed.stats.pts < plain.stats.pts);
    assert_eq!(plain.ci.pts, subsumed.ci.pts, "precision is unchanged");
    Ok(())
}
