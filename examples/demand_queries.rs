//! Demand-driven points-to queries via magic sets — the paper's §10
//! future-work direction.
//!
//! Instead of exhaustively computing every points-to set, the
//! context-insensitive Datalog rules are rewritten with the magic-sets
//! transformation so that bottom-up evaluation derives only what one
//! query transitively demands.
//!
//! ```text
//! cargo run --release --example demand_queries [benchmark] [scale]
//! ```

use ctxform::{demand_points_to, load_facts, CI_RULES};
use ctxform_datalog::Engine;
use ctxform_minijava::compile;
use ctxform_synth::{generate, preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "luindex".to_owned());
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let cfg = preset(&name).ok_or("unknown benchmark")?;
    let module = compile(&generate(&cfg.scale_driver(scale)))?;
    let program = &module.program;
    println!("{name} at scale {scale}: {}", program.stats());

    // Exhaustive context-insensitive run, for the work comparison.
    let mut exhaustive = Engine::parse(CI_RULES)?;
    load_facts(&mut exhaustive, program);
    let exhaustive_stats = exhaustive.run();
    println!(
        "exhaustive CI analysis: {} rule firings, {} tuples",
        exhaustive_stats.derivations, exhaustive_stats.tuples
    );

    // Query a handful of variables spread across the program.
    println!("\ndemand-driven queries:");
    let step = (program.var_count() / 6).max(1);
    for v in (0..program.var_count()).step_by(step).take(6) {
        let var = ctxform_ir::Var::from_index(v);
        let answer = demand_points_to(program, var)?;
        println!(
            "  pts({:36}) = {:3} sites   [{:6} firings = {:4.1}% of exhaustive]",
            format!(
                "{}::{}",
                program.method_names[program.var_method[v].index()],
                program.var_names[v]
            ),
            answer.points_to.len(),
            answer.derivations,
            100.0 * answer.derivations as f64 / exhaustive_stats.derivations as f64,
        );
    }
    println!(
        "\nDense queries approach the exhaustive cost (points-to analysis is\n\
         deeply mutually recursive); queries into loosely coupled code cost\n\
         a fraction of it — the synergy §10 anticipates for transformer\n\
         strings, whose local facts need no context enumeration."
    );
    Ok(())
}
