//! The §2 precision tour on the paper's Figure 1 program: how
//! context-insensitive, 1-call, 2-call, 1-object, and 2-object+H analyses
//! differ on `x1`, `y1`, `x2`, `y2`, and `z`.
//!
//! ```text
//! cargo run --example sensitivity_tour
//! ```

use ctxform::{analyze, AnalysisConfig};
use ctxform_minijava::{compile, corpus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile(corpus::FIG1)?;
    let program = &module.program;
    let main = module.method_by_name("Main.main").expect("main");
    let var = |n: &str| module.var_by_name(main, n).expect("var");

    let configs: Vec<(&str, AnalysisConfig)> = vec![
        ("insensitive", AnalysisConfig::insensitive()),
        ("1-call", AnalysisConfig::context_strings("1-call".parse()?)),
        ("2-call", AnalysisConfig::context_strings("2-call".parse()?)),
        (
            "1-object",
            AnalysisConfig::context_strings("1-object".parse()?),
        ),
        (
            "2-object+H",
            AnalysisConfig::transformer_strings("2-object+H".parse()?),
        ),
    ];

    println!("Figure 1 program, points-to sets per configuration");
    println!("(h1 = x's Object, h2 = y's Object, m1 = the T allocated in T.m)\n");
    println!(
        "{:12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "config", "x1", "y1", "x2", "y2", "z"
    );
    for (label, config) in configs {
        let result = analyze(program, &config);
        let fmt = |name: &str| {
            let mut sites: Vec<String> = result
                .ci
                .points_to(var(name))
                .into_iter()
                .map(|h| {
                    let full = &program.heap_names[h.index()];
                    // Compress "Main.main/new Object#0" to "h1"-style tags.
                    match full.as_str() {
                        "Main.main/new Object#0" => "h1".to_owned(),
                        "Main.main/new Object#1" => "h2".to_owned(),
                        s if s.starts_with("T.m/") => "m1".to_owned(),
                        s => s.to_owned(),
                    }
                })
                .collect();
            sites.sort();
            if sites.is_empty() {
                "∅".to_owned()
            } else {
                sites.join(",")
            }
        };
        println!(
            "{label:12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            fmt("x1"),
            fmt("y1"),
            fmt("x2"),
            fmt("y2"),
            fmt("z")
        );
    }
    println!(
        "\nReading the table (paper §2):\n\
         * 1-call separates x1/y1 but merges x2/y2 (id2's inner call site is shared);\n\
         * 2-call recovers x2/y2;\n\
         * 1-object merges x1/y1 (same receiver h3) but separates x2/y2 (h4 vs h5);\n\
         * heap contexts (+H) empty z: a.f and b.f no longer alias."
    );
    Ok(())
}
