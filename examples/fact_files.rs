//! Using `ctxform` without the bundled frontend: export a program to the
//! text fact format (the interface a Soot-style fact generator would
//! target), read it back, and analyze the imported facts.
//!
//! ```text
//! cargo run --example fact_files
//! ```

use ctxform::{analyze, AnalysisConfig};
use ctxform_ir::text;
use ctxform_minijava::{compile, corpus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A frontend produces a program...
    let module = compile(corpus::DISPATCH)?;
    let program = module.program;

    // ...which serializes to the line-oriented fact format.
    let fact_file = text::emit(&program);
    println!("fact file ({} lines):", fact_file.lines().count());
    for line in fact_file.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    // Any other tool could have produced this file; parse validates it.
    let imported = text::parse(&fact_file)?;
    assert_eq!(imported, program);

    // The analysis runs on the imported relations alone.
    let result = analyze(
        &imported,
        &AnalysisConfig::transformer_strings("1-object".parse()?),
    );
    println!(
        "\nanalysis of the imported facts: {} pts facts, {} call edges, {} reachable methods",
        result.stats.pts,
        result.stats.call,
        result.ci.reach.len()
    );

    // The polymorphic `make` site dispatches to both Circle and Square.
    let main = imported
        .method_names
        .iter()
        .position(|n| n == "Main.main")
        .unwrap();
    let poly_site = imported
        .inv_method
        .iter()
        .enumerate()
        .find(|&(_, m)| m.index() == main)
        .map(|(i, _)| ctxform_ir::Inv::from_index(i))
        .unwrap();
    let targets = result.ci.call_targets(poly_site);
    println!("\nfirst call site in main dispatches to:");
    for q in targets {
        println!("  {}", imported.method_names[q.index()]);
    }
    Ok(())
}
