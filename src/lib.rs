//! Workspace-level umbrella crate: re-exports every `ctxform` crate so the
//! examples and integration tests in this repository can use one import root.

pub use ctxform as core;
pub use ctxform_algebra as algebra;
pub use ctxform_datalog as datalog;
pub use ctxform_ir as ir;
pub use ctxform_minijava as minijava;
pub use ctxform_synth as synth;
pub use ctxform_vm as vm;
