#!/usr/bin/env bash
# Serving-tier saturation benchmark.
#
# Boots the daemon twice on ephemeral ports — once as the pre-sharding
# baseline (one shard, and the loadgen holding one request in flight per
# connection with no batching), once as the sharded tier driven with
# pipelining and batched points-to queries — runs the *same* loadgen
# harness against both, and merges the two reports into one artifact
# (default BENCH_SERVE_6.json) recording the QPS ratio at saturation.
# Exits non-zero if either run sees a protocol error or if the sharded
# run is not at least MIN_SPEEDUP (default 2.0) times the baseline QPS.
#
# Knobs (env): BENCH_SECONDS, BENCH_CONNECTIONS, BENCH_SHARDS,
# BENCH_PIPELINE, BENCH_BATCH, MIN_SPEEDUP.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_SERVE_6.json}"
SECS="${BENCH_SECONDS:-3}"
CONNS="${BENCH_CONNECTIONS:-8}"
SHARDS="${BENCH_SHARDS:-2}"
PIPELINE="${BENCH_PIPELINE:-8}"
BATCH="${BENCH_BATCH:-32}"
MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"

cargo build --release -p ctxform-server >&2

# run_one OUT-JSON "serve flags" "loadgen flags"
run_one() {
  local out="$1" serve_flags="$2" loadgen_flags="$3"
  local port_file pid port
  port_file="$(mktemp)"
  # shellcheck disable=SC2086  # the flag strings are word lists on purpose
  ./target/release/ctxform-serve --port 0 --port-file "$port_file" \
    $serve_flags &
  pid=$!
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    sleep 0.1
  done
  port="$(cat "$port_file")"
  # shellcheck disable=SC2086
  ./target/release/ctxform-client --addr "127.0.0.1:$port" loadgen \
    --connections "$CONNS" --seconds "$SECS" $loadgen_flags --out "$out" >&2
  ./target/release/ctxform-client --addr "127.0.0.1:$port" shutdown >&2
  wait "$pid"
  rm -f "$port_file"
}

echo "== baseline: 1 shard, pipeline 1, no batching ==" >&2
run_one /tmp/bench_serve_baseline.json \
  "--shards 1 --queue 256" \
  "--pipeline 1 --batch 0"

echo "== sharded: $SHARDS shards, pipeline $PIPELINE, batch $BATCH ==" >&2
run_one /tmp/bench_serve_sharded.json \
  "--shards $SHARDS --queue 256 --replicate-hot 64" \
  "--pipeline $PIPELINE --batch $BATCH"

OUT="$OUT" MIN_SPEEDUP="$MIN_SPEEDUP" python3 - <<'EOF'
import json, os

baseline = json.load(open('/tmp/bench_serve_baseline.json'))
sharded = json.load(open('/tmp/bench_serve_sharded.json'))
for name, run in (('baseline', baseline), ('sharded', sharded)):
    assert run['errors'] == 0, f'{name} run saw {run["errors"]} protocol errors'

speedup_qps = sharded['throughput_qps'] / baseline['throughput_qps']
speedup_rps = sharded['throughput_rps'] / baseline['throughput_rps']
artifact = {
    'schema': 'ctxform-serve-shard-bench/1',
    'baseline': baseline,
    'sharded': sharded,
    'speedup_qps': round(speedup_qps, 2),
    'speedup_rps': round(speedup_rps, 2),
}
out = os.environ['OUT']
json.dump(artifact, open(out, 'w'), indent=2)
print(f'{out}: baseline {baseline["throughput_qps"]:.0f} qps -> '
      f'sharded {sharded["throughput_qps"]:.0f} qps '
      f'({speedup_qps:.2f}x qps, {speedup_rps:.2f}x rps)')
floor = float(os.environ['MIN_SPEEDUP'])
assert speedup_qps >= floor, (
    f'sharded tier is only {speedup_qps:.2f}x baseline QPS (floor {floor}x)')
EOF
